// The original std::map-based availability profile, kept verbatim as a
// reference implementation for differential testing of the flat-vector
// AvailabilityProfile. Slow but simple: correctness here is easy to audit,
// so agreement (identical breakpoints, identical query answers) transfers
// that confidence to the optimized production class.
#pragma once

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core::testing {

class ReferenceProfile {
 public:
  ReferenceProfile(Time origin, CoreCount capacity)
      : origin_(origin), capacity_(capacity) {
    DBS_REQUIRE(capacity >= 0, "capacity must be non-negative");
    steps_[origin] = capacity;
  }

  [[nodiscard]] Time origin() const { return origin_; }
  [[nodiscard]] CoreCount capacity() const { return capacity_; }

  [[nodiscard]] CoreCount free_at(Time t) const {
    DBS_REQUIRE(t >= origin_, "query before profile origin");
    auto it = steps_.upper_bound(t);
    DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
    --it;
    return it->second;
  }

  [[nodiscard]] CoreCount min_free(Time from, Time to) const {
    DBS_REQUIRE(from < to, "empty interval");
    DBS_REQUIRE(from >= origin_, "query before profile origin");
    auto it = steps_.upper_bound(from);
    DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
    --it;
    CoreCount lo = it->second;
    for (++it; it != steps_.end() && it->first < to; ++it)
      lo = std::min(lo, it->second);
    return lo;
  }

  [[nodiscard]] bool can_fit(Time at, Duration dur, CoreCount cores) const {
    if (dur <= Duration::zero()) return cores <= free_at(at);
    return min_free(at, at + dur) >= cores;
  }

  void subtract(Time from, Time to, CoreCount cores) {
    DBS_REQUIRE(cores >= 0, "negative subtraction");
    if (cores == 0) return;
    from = max(from, origin_);
    if (from >= to) return;
    ensure_breakpoint(from);
    ensure_breakpoint(to);
    for (auto it = steps_.lower_bound(from);
         it != steps_.end() && it->first < to; ++it) {
      it->second -= cores;
      DBS_ASSERT(it->second >= 0, "profile oversubscribed");
    }
  }

  void add(Time from, Time to, CoreCount cores) {
    DBS_REQUIRE(cores >= 0, "negative addition");
    if (cores == 0) return;
    from = max(from, origin_);
    if (from >= to) return;
    ensure_breakpoint(from);
    ensure_breakpoint(to);
    for (auto it = steps_.lower_bound(from);
         it != steps_.end() && it->first < to; ++it) {
      it->second += cores;
      DBS_ASSERT(it->second <= capacity_, "profile exceeds capacity");
    }
  }

  void subtract_clamped(Time from, Time to, CoreCount cores) {
    DBS_REQUIRE(cores >= 0, "negative subtraction");
    if (cores == 0) return;
    from = max(from, origin_);
    if (from >= to) return;
    ensure_breakpoint(from);
    ensure_breakpoint(to);
    for (auto it = steps_.lower_bound(from);
         it != steps_.end() && it->first < to; ++it)
      it->second = std::max<CoreCount>(0, it->second - cores);
  }

  [[nodiscard]] Time earliest_fit(CoreCount cores, Duration dur,
                                  Time not_before) const {
    DBS_REQUIRE(cores > 0, "fit query needs cores");
    DBS_REQUIRE(dur > Duration::zero(), "fit query needs a duration");
    if (cores > capacity_) return Time::far_future();
    Time candidate = max(not_before, origin_);
    for (;;) {
      // Scan forward from `candidate`; if a segment within [candidate,
      // candidate + dur) dips below `cores`, restart after that segment.
      const Time horizon = candidate + dur;
      auto it = steps_.upper_bound(candidate);
      DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
      --it;
      bool ok = true;
      for (; it != steps_.end() && it->first < horizon; ++it) {
        if (it->second < cores) {
          auto next = std::next(it);
          if (next == steps_.end()) return Time::far_future();
          candidate = next->first;
          ok = false;
          break;
        }
      }
      if (ok) return candidate;
    }
  }

  [[nodiscard]] std::vector<std::pair<Time, CoreCount>> breakpoints() const {
    return {steps_.begin(), steps_.end()};
  }

 private:
  void ensure_breakpoint(Time t) {
    if (t <= origin_) return;
    auto it = steps_.lower_bound(t);
    if (it != steps_.end() && it->first == t) return;
    DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
    --it;
    steps_.emplace(t, it->second);
  }

  Time origin_;
  CoreCount capacity_;
  /// key -> free cores from key until the next key; last extends to +inf.
  std::map<Time, CoreCount> steps_;
};

}  // namespace dbs::core::testing
