#include "config/maui_config.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::cfg {
namespace {

// The exact configuration of the paper's Fig. 6.
constexpr const char* kFig6 = R"(
DFSPOLICY          DFSSINGLEANDTARGETDELAY
DFSINTERVAL        06:00:00
DFSDECAY           0.4
USERCFG[user01]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                   DFSSINGLEDELAYTIME=0
USERCFG[user02]    DFSDYNDELAYPERM=0
USERCFG[user03]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                   DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                   DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05]  DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06]  DFSDYNDELAYPERM=0
)";

TEST(MauiConfig, ParsesFig6Exactly) {
  const ParseResult r = parse_maui_config(kFig6);
  ASSERT_TRUE(r.ok()) << r.issues.front().message;
  const core::DfsConfig& dfs = r.config.dfs;
  EXPECT_EQ(dfs.policy, core::DfsPolicy::SingleAndTargetDelay);
  EXPECT_EQ(dfs.interval, Duration::hours(6));
  EXPECT_DOUBLE_EQ(dfs.decay, 0.4);

  const auto& u1 = dfs.user.at("user01");
  EXPECT_TRUE(u1.delay_perm);
  EXPECT_EQ(u1.target_delay, Duration::seconds(3600));
  EXPECT_EQ(u1.single_delay, Duration::zero());

  EXPECT_FALSE(dfs.user.at("user02").delay_perm);
  EXPECT_EQ(dfs.user.at("user03").single_delay, Duration::minutes(30));
  EXPECT_EQ(dfs.user.at("user04").target_delay, Duration::hours(2));
  EXPECT_EQ(dfs.user.at("user04").single_delay, Duration::minutes(15));
  EXPECT_EQ(dfs.group.at("group05").target_delay, Duration::hours(4));
  EXPECT_FALSE(dfs.group.at("group06").delay_perm);
}

TEST(MauiConfig, SchedulerKnobs) {
  const auto config = parse_maui_config_or_throw(R"(
# Table II configuration
RESERVATIONDEPTH      5
RESERVATIONDELAYDEPTH 5
BACKFILL              ON
QUEUETIMEWEIGHT       1.0
XFACTORWEIGHT         0.5
RESWEIGHT             0.01
POLLINTERVAL          00:00:30
PREEMPTION            ON
MALLEABLESTEAL        ON
DYNPARTITION          8
MAXJOBSPERUSER        4
MEASURETHREADS        4
STAGETIMING           ON
ALLOCATIONPOLICY      SPREAD
)");
  EXPECT_EQ(config.reservation_depth, 5u);
  EXPECT_EQ(config.reservation_delay_depth, 5u);
  EXPECT_TRUE(config.enable_backfill);
  EXPECT_DOUBLE_EQ(config.weights.queue_time_per_minute, 1.0);
  EXPECT_DOUBLE_EQ(config.weights.xfactor, 0.5);
  EXPECT_DOUBLE_EQ(config.weights.per_core, 0.01);
  EXPECT_EQ(config.poll_interval, Duration::seconds(30));
  EXPECT_TRUE(config.allow_preemption);
  EXPECT_TRUE(config.allow_malleable_steal);
  EXPECT_EQ(config.dynamic_partition_cores, 8);
  EXPECT_EQ(config.max_eligible_per_user, 4u);
  EXPECT_EQ(config.measure_threads, 4u);
  EXPECT_TRUE(config.stage_timing);
  EXPECT_EQ(config.allocation_policy, cluster::AllocationPolicy::Spread);
}

TEST(MauiConfig, MeasureThreadsRejectsNonPositive) {
  const ParseResult zero = parse_maui_config("MEASURETHREADS 0\n");
  ASSERT_EQ(zero.issues.size(), 1u);
  EXPECT_EQ(zero.config.measure_threads, 1u);  // default preserved
  const ParseResult bogus = parse_maui_config("MEASURETHREADS abc\n");
  ASSERT_EQ(bogus.issues.size(), 1u);
}

TEST(MauiConfig, FairshareAndCredSettings) {
  const auto config = parse_maui_config_or_throw(R"(
FAIRSHARE   ON
FSINTERVAL  12:00:00
FSDEPTH     8
FSDECAY     0.5
FSWEIGHT    2.0
CREDWEIGHT  1.0
USERCFG[vip]   PRIORITY=1000 FSTARGET=30
GROUPCFG[hpc]  PRIORITY=50
CLASSCFG[debug] PRIORITY=-10
)");
  EXPECT_TRUE(config.fairshare.enabled);
  EXPECT_EQ(config.fairshare.interval, Duration::hours(12));
  EXPECT_EQ(config.fairshare.depth, 8u);
  EXPECT_DOUBLE_EQ(config.fairshare.user_targets.at("vip"), 30.0);
  EXPECT_DOUBLE_EQ(config.cred_priorities.user.at("vip"), 1000.0);
  EXPECT_DOUBLE_EQ(config.cred_priorities.group.at("hpc"), 50.0);
  EXPECT_DOUBLE_EQ(config.cred_priorities.job_class.at("debug"), -10.0);
}

TEST(MauiConfig, DefaultsViaDfsDefaultCfg) {
  const auto config = parse_maui_config_or_throw(
      "DFSPOLICY DFSTARGETDELAY\n"
      "DFSDEFAULTCFG DFSTARGETDELAYTIME=500 DFSDYNDELAYPERM=1\n");
  EXPECT_EQ(config.dfs.defaults.target_delay, Duration::seconds(500));
  EXPECT_TRUE(config.dfs.defaults.delay_perm);
}

TEST(MauiConfig, CommentsAndBlankLines) {
  const ParseResult r = parse_maui_config(
      "\n# full-line comment\nDFSDECAY 0.2  # trailing comment\n\n");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.config.dfs.decay, 0.2);
}

TEST(MauiConfig, CaseInsensitiveKeys) {
  const ParseResult r = parse_maui_config(
      "dfspolicy dfstargetdelay\nusercfg[Alice] dfsdyndelayperm=0\n");
  ASSERT_TRUE(r.ok()) << r.issues.front().message;
  EXPECT_EQ(r.config.dfs.policy, core::DfsPolicy::TargetDelay);
  // Entity names keep their original case.
  EXPECT_FALSE(r.config.dfs.user.at("Alice").delay_perm);
}

TEST(MauiConfig, IssuesReportedWithLineNumbers) {
  const ParseResult r = parse_maui_config(
      "DFSPOLICY DFSTARGETDELAY\n"
      "BOGUSKEY 42\n"
      "DFSINTERVAL notaduration\n"
      "USERCFG[u] NOT_A_PAIR\n"
      "USERCFG[ ] DFSDYNDELAYPERM=1\n");
  ASSERT_EQ(r.issues.size(), 4u);
  EXPECT_EQ(r.issues[0].line, 2);
  EXPECT_EQ(r.issues[1].line, 3);
  EXPECT_EQ(r.issues[2].line, 4);
  // Recognized settings before/after bad lines still applied.
  EXPECT_EQ(r.config.dfs.policy, core::DfsPolicy::TargetDelay);
}

TEST(MauiConfig, OrThrowRaisesOnIssue) {
  EXPECT_THROW((void)parse_maui_config_or_throw("BOGUS 1\n"),
               precondition_error);
}

TEST(MauiConfig, EntityUpdatesMerge) {
  const auto config = parse_maui_config_or_throw(
      "USERCFG[u] DFSTARGETDELAYTIME=100\n"
      "USERCFG[u] DFSSINGLEDELAYTIME=50\n");
  EXPECT_EQ(config.dfs.user.at("u").target_delay, Duration::seconds(100));
  EXPECT_EQ(config.dfs.user.at("u").single_delay, Duration::seconds(50));
}

TEST(MauiConfig, RenderRoundTrips) {
  const auto config = parse_maui_config_or_throw(kFig6);
  const std::string rendered = render_dfs_config(config.dfs);
  const auto reparsed = parse_maui_config_or_throw(rendered);
  EXPECT_EQ(reparsed.dfs.policy, config.dfs.policy);
  EXPECT_EQ(reparsed.dfs.interval, config.dfs.interval);
  EXPECT_EQ(reparsed.dfs.user.at("user04"), config.dfs.user.at("user04"));
  EXPECT_EQ(reparsed.dfs.group.at("group06"), config.dfs.group.at("group06"));
}

}  // namespace
}  // namespace dbs::cfg
