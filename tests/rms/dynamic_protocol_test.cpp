// The dynamic (de)allocation protocol end to end at the RMS level:
// tm_dynget -> dynqueued -> grant/reject -> dyn_join -> application.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "common/assert.hpp"
#include "rms/server.hpp"

namespace dbs::rms {
namespace {

using apps::ScriptedApp;
using test::BareSystem;

struct DynObserver : ServerObserver {
  int requests = 0, grants = 0, rejects = 0, releases = 0;
  CoreCount last_extra = 0;
  void on_dyn_request(const Job&, const DynRequest&) override { ++requests; }
  void on_dyn_grant(const Job&, const DynRequest&, CoreCount extra) override {
    ++grants;
    last_extra = extra;
  }
  void on_dyn_reject(const Job&, const DynRequest&) override { ++rejects; }
  void on_dyn_release(const Job&, CoreCount) override { ++releases; }
};

JobId submit_scripted(BareSystem& s, CoreCount cores,
                      std::vector<ScriptedApp::Step> steps,
                      ScriptedApp** out = nullptr) {
  auto app = std::make_unique<ScriptedApp>(Duration::minutes(10),
                                           std::move(steps));
  if (out != nullptr) *out = app.get();
  return s.server.submit(test::spec("dyn", cores, Duration::minutes(20)),
                         std::move(app));
}

TEST(DynamicProtocol, RequestEntersDynQueuedState) {
  BareSystem s;
  const JobId id = submit_scripted(
      s, 4, {{Duration::minutes(1), /*grow=*/4, 0, 1.0, Duration::zero()}});
  ASSERT_TRUE(s.server.start_job(id, false));
  // No scheduler attached: the request arrives and the job stays dynqueued.
  s.sim.run_until(Time::from_seconds(90));
  EXPECT_EQ(s.server.job(id).state(), JobState::DynQueued);
  ASSERT_EQ(s.server.jobs().dyn_requests().size(), 1u);
  const DynRequest& req = s.server.jobs().dyn_requests().front();
  EXPECT_EQ(req.extra_cores, 4);
  EXPECT_EQ(req.attempt, 1);
}

TEST(DynamicProtocol, GrantExpandsAllocationAndInformsApp) {
  BareSystem s;
  DynObserver obs;
  s.server.add_observer(&obs);
  ScriptedApp* app = nullptr;
  const JobId id = submit_scripted(
      s, 4, {{Duration::minutes(1), 4, 0, 0.5, Duration::zero()}}, &app);
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(90));
  ASSERT_EQ(s.server.jobs().dyn_requests().size(), 1u);
  ASSERT_TRUE(s.server.grant_dyn(s.server.jobs().dyn_requests().front().id));
  EXPECT_EQ(s.server.job(id).state(), JobState::Running);
  EXPECT_EQ(s.server.job(id).allocated_cores(), 8);
  EXPECT_EQ(s.cluster.held_by(id), 8);
  s.sim.run();
  EXPECT_EQ(obs.grants, 1);
  EXPECT_EQ(obs.last_extra, 4);
  EXPECT_EQ(app->grants(), 1);
  // remaining_scale 0.5 halves the remaining runtime: the job finishes
  // around 1min + 4.5min instead of 10min.
  const Duration runtime =
      s.server.job(id).end_time() - s.server.job(id).start_time();
  EXPECT_LT(runtime, Duration::minutes(6));
  EXPECT_GT(runtime, Duration::minutes(5));
}

TEST(DynamicProtocol, RejectReturnsJobToRunning) {
  BareSystem s;
  DynObserver obs;
  s.server.add_observer(&obs);
  ScriptedApp* app = nullptr;
  const JobId id = submit_scripted(
      s, 4, {{Duration::minutes(1), 4, 0, 1.0, Duration::zero()}}, &app);
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(90));
  s.server.reject_dyn(s.server.jobs().dyn_requests().front().id, std::nullopt);
  EXPECT_EQ(s.server.job(id).state(), JobState::Running);
  EXPECT_EQ(s.server.job(id).allocated_cores(), 4);
  s.sim.run();
  EXPECT_EQ(obs.rejects, 1);
  EXPECT_EQ(app->rejects(), 1);
  EXPECT_EQ(s.server.job(id).state(), JobState::Completed);
}

TEST(DynamicProtocol, GrantFailsWhenCoresVanished) {
  BareSystem s(1, 8);
  const JobId id = submit_scripted(
      s, 4, {{Duration::minutes(1), 4, 0, 1.0, Duration::zero()}});
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(90));
  // Another job takes the remaining cores before the grant is attempted.
  const JobId thief = s.server.submit(test::spec("thief", 4, Duration::minutes(5)),
                                      test::rigid(Duration::minutes(2)));
  ASSERT_TRUE(s.server.start_job(thief, false));
  EXPECT_FALSE(s.server.grant_dyn(s.server.jobs().dyn_requests().front().id));
  // The request is still pending; the job remains dynqueued.
  EXPECT_EQ(s.server.job(id).state(), JobState::DynQueued);
}

TEST(DynamicProtocol, NegotiationKeepsRequestQueuedUntilDeadline) {
  BareSystem s;
  const JobId id = submit_scripted(
      s, 4, {{Duration::minutes(1), 4, 0, 1.0, Duration::minutes(3)}});
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(90));
  const RequestId req = s.server.jobs().dyn_requests().front().id;
  // Before the deadline a rejection only records the availability hint.
  s.server.reject_dyn(req, Time::from_seconds(500));
  EXPECT_EQ(s.server.jobs().dyn_requests().size(), 1u);
  EXPECT_EQ(s.server.availability_hint(id), Time::from_seconds(500));
  // Still before the deadline (ask at ~60s + 180s timeout = ~240s).
  s.sim.run_until(Time::from_seconds(200));
  s.server.reject_dyn(req, std::nullopt);
  EXPECT_EQ(s.server.jobs().dyn_requests().size(), 1u);  // deadline not yet hit
  // Past the deadline the rejection is final.
  s.sim.run_until(Time::from_seconds(360));
  s.server.reject_dyn(req, std::nullopt);
  EXPECT_TRUE(s.server.jobs().dyn_requests().empty());
  EXPECT_EQ(s.server.job(id).state(), JobState::Running);
  EXPECT_FALSE(s.server.availability_hint(id).has_value());
}

TEST(DynamicProtocol, ReleaseShrinksAllocation) {
  BareSystem s;
  DynObserver obs;
  s.server.add_observer(&obs);
  ScriptedApp* app = nullptr;
  const JobId id = submit_scripted(
      s, 12, {{Duration::minutes(2), 0, /*shrink=*/6, 1.0, Duration::zero()}},
      &app);
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(150));
  EXPECT_EQ(s.server.job(id).allocated_cores(), 6);
  EXPECT_EQ(s.cluster.held_by(id), 6);
  EXPECT_EQ(s.cluster.free_cores(), 26);
  s.sim.run();
  EXPECT_EQ(obs.releases, 1);
  EXPECT_EQ(app->releases(), 1);
  EXPECT_EQ(s.server.job(id).state(), JobState::Completed);
}

TEST(DynamicProtocol, ReleaseAnySubsetAcrossNodes) {
  // The paper's flexibility claim over SLURM: release any subset, not only
  // whole previous grants.
  BareSystem s(4, 8);
  ScriptedApp* app = nullptr;
  const JobId id = submit_scripted(
      s, 20, {{Duration::minutes(1), 0, 7, 1.0, Duration::zero()}}, &app);
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(120));
  EXPECT_EQ(s.server.job(id).allocated_cores(), 13);
  EXPECT_EQ(s.cluster.held_by(id), 13);
}

TEST(DynamicProtocol, JobFinishingWithPendingRequestCleansUp) {
  BareSystem s;
  // Ask very close to the end so no grant arrives before completion.
  const JobId id = submit_scripted(
      s, 4, {{Duration::minutes(10) - Duration::seconds(1), 4, 0, 1.0,
              Duration::zero()}});
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run();
  EXPECT_EQ(s.server.job(id).state(), JobState::Completed);
  EXPECT_TRUE(s.server.jobs().dyn_requests().empty());
  EXPECT_EQ(s.cluster.free_cores(), 32);
}

}  // namespace
}  // namespace dbs::rms
