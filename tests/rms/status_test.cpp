#include "rms/status.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"

namespace dbs::rms {
namespace {

using test::BareSystem;

TEST(Status, QstatShowsStatesAndExpansion) {
  BareSystem s;
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(5),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::seconds(10), /*grow=*/4, 0, 1.0, Duration::zero()}});
  const JobId running = s.server.submit(
      test::spec("runner", 4, Duration::minutes(10)), std::move(app));
  ASSERT_TRUE(s.server.start_job(running, false));
  s.server.submit(test::spec("waiter", 32, Duration::minutes(10), "bob"),
                  test::rigid(Duration::minutes(5)));
  s.sim.run_until(Time::from_seconds(15));
  ASSERT_FALSE(s.server.jobs().dyn_requests().empty());
  ASSERT_TRUE(s.server.grant_dyn(s.server.jobs().dyn_requests().front().id));
  s.sim.run_until(Time::from_seconds(30));

  const std::string out = format_qstat(s.server);
  EXPECT_NE(out.find("runner"), std::string::npos);
  EXPECT_NE(out.find("running"), std::string::npos);
  EXPECT_NE(out.find("waiter"), std::string::npos);
  EXPECT_NE(out.find("queued"), std::string::npos);
  // Expanded allocations render as requested->held.
  EXPECT_NE(out.find("4->8"), std::string::npos) << out;
}

TEST(Status, QstatFiltersFinishedByDefault) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("quick", 4, Duration::minutes(10)),
                                   test::rigid(Duration::seconds(10)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run();
  EXPECT_EQ(format_qstat(s.server).find("quick"), std::string::npos);
  EXPECT_NE(format_qstat(s.server, /*include_finished=*/true).find("quick"),
            std::string::npos);
}

TEST(Status, PbsnodesShowsOccupancyAndState) {
  BareSystem s(3, 8);
  const JobId id = s.server.submit(test::spec("a", 8, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.cluster.set_node_state(NodeId{2}, cluster::NodeState::Down);
  const std::string out = format_pbsnodes(s.server);
  EXPECT_NE(out.find("8/8"), std::string::npos);
  EXPECT_NE(out.find("0/8"), std::string::npos);
  EXPECT_NE(out.find("down"), std::string::npos);
}

TEST(Status, LoadSummaryCounts) {
  BareSystem s;
  const JobId a = s.server.submit(test::spec("a", 8, Duration::minutes(10)),
                                  test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(a, false));
  s.server.submit(test::spec("b", 8, Duration::minutes(10), "bob"),
                  test::rigid(Duration::minutes(5)));
  const std::string out = format_load_summary(s.server);
  EXPECT_NE(out.find("cores 8/32 used"), std::string::npos) << out;
  EXPECT_NE(out.find("1 running"), std::string::npos);
  EXPECT_NE(out.find("1 queued"), std::string::npos);
}

}  // namespace
}  // namespace dbs::rms
