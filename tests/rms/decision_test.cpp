// The decision vocabulary: names, JSON shape, applier dry-run recording.
#include "rms/decision.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "rms/decision_applier.hpp"

namespace dbs::rms {
namespace {

TEST(Decision, KindNamesAreStable) {
  EXPECT_EQ(to_string(DecisionKind::StartJob), "start_job");
  EXPECT_EQ(to_string(DecisionKind::GrantDyn), "grant_dyn");
  EXPECT_EQ(to_string(DecisionKind::RejectDyn), "reject_dyn");
  EXPECT_EQ(to_string(DecisionKind::Preempt), "preempt");
  EXPECT_EQ(to_string(DecisionKind::ShrinkMalleable), "shrink_malleable");
  EXPECT_EQ(to_string(DecisionKind::Reserve), "reserve");
}

TEST(Decision, StartJobJsonHasStableKeyOrder) {
  Decision d;
  d.kind = DecisionKind::StartJob;
  d.job = JobId{7};
  d.backfilled = true;
  std::string out;
  decision_to_json(d, out);
  EXPECT_EQ(out,
            "{\"kind\": \"start_job\", \"job\": 7, \"backfilled\": true, "
            "\"applied\": true}");
}

TEST(Decision, RejectJsonCarriesReasonDeferralAndHint) {
  Decision d;
  d.kind = DecisionKind::RejectDyn;
  d.job = JobId{3};
  d.request = RequestId{12};
  d.cores = 4;
  d.applied = true;
  d.deferred = true;
  d.reason = "dfs_denied";
  d.hint = Time::from_seconds(2);
  std::string out;
  decision_to_json(d, out);
  EXPECT_EQ(out,
            "{\"kind\": \"reject_dyn\", \"job\": 3, \"request\": 12, "
            "\"cores\": 4, \"reason\": \"dfs_denied\", \"deferred\": true, "
            "\"hint_us\": 2000000, \"applied\": true}");
}

TEST(Decision, ReserveJsonCarriesPlannedStart) {
  Decision d;
  d.kind = DecisionKind::Reserve;
  d.job = JobId{9};
  d.cores = 16;
  d.start = Time::from_seconds(600);
  std::string out;
  decision_to_json(d, out);
  EXPECT_EQ(out,
            "{\"kind\": \"reserve\", \"job\": 9, \"cores\": 16, "
            "\"start_us\": 600000000, \"applied\": true}");
}

TEST(Decision, StreamJsonIsAnArray) {
  Decision a;
  a.kind = DecisionKind::Preempt;
  a.job = JobId{1};
  a.for_job = JobId{2};
  EXPECT_EQ(decisions_to_json({a, a}),
            "[{\"kind\": \"preempt\", \"job\": 1, \"for_job\": 2, "
            "\"applied\": true}, "
            "{\"kind\": \"preempt\", \"job\": 1, \"for_job\": 2, "
            "\"applied\": true}]");
  EXPECT_EQ(decisions_to_json({}), "[]");
}

TEST(DecisionApplier, LiveStartJobActsOnServerAndRecords) {
  test::BareSystem sys;
  const JobId id = sys.server.submit(test::spec("a", 8, Duration::minutes(5)),
                                     test::rigid(Duration::minutes(1)));
  DecisionApplier applier(sys.server);
  applier.begin_iteration(/*dry_run=*/false);
  EXPECT_TRUE(applier.start_job(id, /*backfilled=*/false));
  EXPECT_EQ(sys.server.jobs().running().size(), 1u);
  ASSERT_EQ(applier.decisions().size(), 1u);
  const Decision& d = applier.decisions()[0];
  EXPECT_EQ(d.kind, DecisionKind::StartJob);
  EXPECT_EQ(d.job, id);
  EXPECT_TRUE(d.applied);
  EXPECT_FALSE(d.backfilled);
}

TEST(DecisionApplier, DryRunRecordsWithoutTouchingServer) {
  test::BareSystem sys;
  const JobId id = sys.server.submit(test::spec("a", 8, Duration::minutes(5)),
                                     test::rigid(Duration::minutes(1)));
  DecisionApplier applier(sys.server);
  applier.begin_iteration(/*dry_run=*/true);
  EXPECT_TRUE(applier.start_job(id, /*backfilled=*/true));
  applier.reserve(id, 8, Time::from_seconds(60));
  // Nothing happened to the server: the job is still queued, no cores used.
  EXPECT_EQ(sys.server.jobs().running().size(), 0u);
  EXPECT_EQ(sys.cluster.free_cores(), sys.cluster.total_cores());
  ASSERT_EQ(applier.decisions().size(), 2u);
  EXPECT_TRUE(applier.decisions()[0].applied);  // assumed success
  EXPECT_EQ(applier.decisions()[1].kind, DecisionKind::Reserve);
}

TEST(DecisionApplier, BeginIterationClearsTheStream) {
  test::BareSystem sys;
  DecisionApplier applier(sys.server);
  applier.begin_iteration(true);
  applier.reserve(JobId{1}, 4, Time::epoch());
  applier.begin_iteration(false);
  EXPECT_TRUE(applier.decisions().empty());
  EXPECT_FALSE(applier.dry_run());
}

}  // namespace
}  // namespace dbs::rms
