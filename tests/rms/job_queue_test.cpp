#include "rms/job_queue.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "common/assert.hpp"

namespace dbs::rms {
namespace {

std::unique_ptr<Job> job(std::uint64_t id, std::string user = "alice") {
  return std::make_unique<Job>(
      JobId{id}, test::spec("j" + std::to_string(id), 2, Duration::minutes(5), user),
      test::rigid(Duration::minutes(1)), Time::epoch());
}

TEST(JobQueue, AddAndLookup) {
  JobQueue q;
  q.add(job(1));
  q.add(job(2));
  EXPECT_TRUE(q.contains(JobId{1}));
  EXPECT_FALSE(q.contains(JobId{9}));
  EXPECT_EQ(q.at(JobId{2}).spec().name, "j2");
  EXPECT_EQ(q.size(), 2u);
  EXPECT_THROW((void)q.at(JobId{9}), precondition_error);
  EXPECT_THROW(q.add(job(1)), precondition_error);
}

TEST(JobQueue, QueuedInSubmissionOrder) {
  JobQueue q;
  q.add(job(1));
  q.add(job(3));
  q.add(job(7));
  const auto queued = q.queued();
  ASSERT_EQ(queued.size(), 3u);
  EXPECT_EQ(queued[0]->id(), JobId{1});
  EXPECT_EQ(queued[1]->id(), JobId{3});
  EXPECT_EQ(queued[2]->id(), JobId{7});
  // The server allocates ids sequentially; the queue relies on it.
  EXPECT_THROW(q.add(job(5)), precondition_error);
}

void finish(Job& j) {
  j.mark_started(Time::epoch(), cluster::Placement{{{NodeId{0}, 2}}}, false);
  j.mark_completed(Time::from_seconds(1));
}

TEST(JobQueue, RetireDestroysRecordAndForgetsId) {
  JobQueue q;
  Job& a = q.add(job(1));
  q.add(job(2));
  EXPECT_THROW(q.retire(JobId{1}), precondition_error);  // not finished
  finish(a);
  q.retire(JobId{1});
  EXPECT_FALSE(q.contains(JobId{1}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.retired_count(), 1u);
  EXPECT_EQ(q.all().size(), 1u);
  EXPECT_EQ(q.queued().size(), 1u);
  EXPECT_THROW(q.retire(JobId{1}), precondition_error);  // already gone
  EXPECT_THROW((void)q.at(JobId{1}), precondition_error);
}

TEST(JobQueue, MinLiveIdAdvancesAndFallsBack) {
  JobQueue q;
  EXPECT_EQ(q.min_live_id(77), 77u);
  Job& a = q.add(job(1));
  Job& b = q.add(job(2));
  q.add(job(3));
  EXPECT_EQ(q.min_live_id(), 1u);
  finish(a);
  q.retire(JobId{1});
  EXPECT_EQ(q.min_live_id(), 2u);
  finish(b);
  q.retire(JobId{2});
  EXPECT_EQ(q.min_live_id(), 3u);
}

TEST(JobQueue, CompactionKeepsScansAndLookupsIntact) {
  // Crosses the compaction floor (1024 tombstones) mid-way, then checks
  // every view still reflects exactly the live tail.
  constexpr std::uint64_t kJobs = 1200;
  constexpr std::uint64_t kRetire = 1100;
  JobQueue q;
  for (std::uint64_t i = 1; i <= kJobs; ++i) q.add(job(i));
  for (std::uint64_t i = 1; i <= kRetire; ++i) {
    finish(q.at(JobId{i}));
    q.retire(JobId{i});
  }
  EXPECT_EQ(q.size(), kJobs - kRetire);
  EXPECT_EQ(q.retired_count(), kRetire);
  EXPECT_EQ(q.min_live_id(), kRetire + 1);
  EXPECT_FALSE(q.contains(JobId{kRetire}));
  EXPECT_TRUE(q.contains(JobId{kRetire + 1}));
  const auto queued = q.queued();
  ASSERT_EQ(queued.size(), kJobs - kRetire);
  EXPECT_EQ(queued.front()->id(), JobId{kRetire + 1});
  EXPECT_EQ(queued.back()->id(), JobId{kJobs});
}

TEST(JobQueue, StateFiltering) {
  JobQueue q;
  Job& a = q.add(job(1));
  q.add(job(2));
  a.mark_started(Time::epoch(), cluster::Placement{{{NodeId{0}, 2}}}, false);
  EXPECT_EQ(q.queued().size(), 1u);
  EXPECT_EQ(q.running().size(), 1u);
  EXPECT_EQ(q.all().size(), 2u);
  a.mark_completed(Time::from_seconds(1));
  EXPECT_TRUE(q.running().empty());
}

TEST(JobQueue, DynFifoOrder) {
  JobQueue q;
  Job& a = q.add(job(1));
  Job& b = q.add(job(2));
  a.mark_started(Time::epoch(), cluster::Placement{{{NodeId{0}, 2}}}, false);
  b.mark_started(Time::epoch(), cluster::Placement{{{NodeId{1}, 2}}}, false);
  q.push_dyn_request({RequestId{10}, JobId{2}, 4, Time::epoch(), 1, Time::epoch()});
  q.push_dyn_request({RequestId{11}, JobId{1}, 2, Time::epoch(), 1, Time::epoch()});
  ASSERT_EQ(q.dyn_requests().size(), 2u);
  EXPECT_EQ(q.dyn_requests().front().job, JobId{2});
  EXPECT_NE(q.dyn_request_of(JobId{1}), nullptr);
  EXPECT_EQ(q.dyn_request_of(JobId{3}), nullptr);
}

TEST(JobQueue, OnePendingRequestPerJob) {
  JobQueue q;
  q.add(job(1));
  q.push_dyn_request({RequestId{1}, JobId{1}, 4, Time::epoch(), 1, Time::epoch()});
  EXPECT_THROW(
      q.push_dyn_request({RequestId{2}, JobId{1}, 4, Time::epoch(), 2, Time::epoch()}),
      precondition_error);
}

TEST(JobQueue, RemoveDynRequest) {
  JobQueue q;
  q.add(job(1));
  q.push_dyn_request({RequestId{1}, JobId{1}, 4, Time::epoch(), 1, Time::epoch()});
  EXPECT_TRUE(q.remove_dyn_request(RequestId{1}));
  EXPECT_FALSE(q.remove_dyn_request(RequestId{1}));
  EXPECT_TRUE(q.dyn_requests().empty());
}

}  // namespace
}  // namespace dbs::rms
