// Mother-superior state machine details: generation guards, kill during
// in-flight events, decision validation.
#include "rms/mom.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "common/assert.hpp"
#include "rms/server.hpp"

namespace dbs::rms {
namespace {

using test::BareSystem;

TEST(Mom, TracksActiveJobs) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  EXPECT_EQ(s.moms.active_jobs(), 0u);
  ASSERT_TRUE(s.server.start_job(id, false));
  EXPECT_EQ(s.moms.active_jobs(), 1u);
  s.sim.run();
  EXPECT_EQ(s.moms.active_jobs(), 0u);
}

TEST(Mom, KillDuringJoinPreventsAppStart) {
  // Kill the job while the join is still in flight: the application must
  // never start and no completion event may fire.
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::seconds(30)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.moms.kill(id);
  s.sim.run();
  EXPECT_EQ(s.moms.active_jobs(), 0u);
  // The job record stays Running forever (no mom to report completion) —
  // the server-side qdel path is what cleans this up in practice.
  EXPECT_TRUE(s.server.job(id).is_running());
}

TEST(Mom, GrantAfterCompletionIsHarmless) {
  BareSystem s;
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::seconds(30),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::seconds(10), 4, 0, 1.0, Duration::zero()}});
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   std::move(app));
  ASSERT_TRUE(s.server.start_job(id, false));
  // Let the request arrive, then the job finish, THEN grant.
  s.sim.run_until(Time::from_seconds(15));
  ASSERT_EQ(s.server.jobs().dyn_requests().size(), 1u);
  const RequestId req = s.server.jobs().dyn_requests().front().id;
  s.sim.run_until(Time::from_seconds(29));
  ASSERT_TRUE(s.server.grant_dyn(req));  // cores committed...
  s.sim.run();  // ...but the job finishes before dyn_join completes
  EXPECT_EQ(s.server.job(id).state(), JobState::Completed);
  EXPECT_EQ(s.cluster.free_cores(), 32);  // everything released
}

TEST(Mom, RejectsInvalidDecisions) {
  BareSystem s;
  // An application whose decision finishes in the past must be caught.
  class BadApp final : public Application {
   public:
    AppDecision on_start(Time now, CoreCount) override {
      return {now - Duration::seconds(1), std::nullopt, std::nullopt};
    }
    AppDecision on_grant(Time now, CoreCount) override { return {now, {}, {}}; }
    AppDecision on_reject(Time now, CoreCount) override { return {now, {}, {}}; }
    AppDecision on_released(Time now, CoreCount) override {
      return {now, {}, {}};
    }
  };
  const JobId id = s.server.submit(test::spec("bad", 4, Duration::minutes(10)),
                                   std::make_unique<BadApp>());
  ASSERT_TRUE(s.server.start_job(id, false));
  EXPECT_THROW(s.sim.run(), precondition_error);
}

TEST(Mom, LaunchTwiceRejected) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  EXPECT_THROW(s.moms.launch(s.server.job(id)), precondition_error);
}

}  // namespace
}  // namespace dbs::rms
