#include "rms/tm_interface.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "common/assert.hpp"
#include "rms/server.hpp"

namespace dbs::rms {
namespace {

using test::BareSystem;

TEST(TmInterface, DyngetReachesServer) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(1));

  TmInterface tm(s.server, id);
  tm.tm_dynget(4);
  s.sim.run_until(Time::from_seconds(2));
  EXPECT_EQ(s.server.job(id).state(), JobState::DynQueued);
  ASSERT_EQ(s.server.jobs().dyn_requests().size(), 1u);
  EXPECT_EQ(s.server.jobs().dyn_requests().front().extra_cores, 4);
}

TEST(TmInterface, DyngetRequiresRunningJob) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  TmInterface tm(s.server, id);
  EXPECT_THROW(tm.tm_dynget(4), precondition_error);
  EXPECT_THROW(tm.tm_dynget(0), precondition_error);
}

TEST(TmInterface, DynfreeReleasesSubset) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 12, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(1));

  TmInterface tm(s.server, id);
  tm.tm_dynfree(5);
  s.sim.run_until(Time::from_seconds(2));
  EXPECT_EQ(s.server.job(id).allocated_cores(), 7);
  EXPECT_EQ(s.cluster.held_by(id), 7);
}

TEST(TmInterface, DynfreeMustKeepOneCore) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  TmInterface tm(s.server, id);
  EXPECT_THROW(tm.tm_dynfree(4), precondition_error);
  EXPECT_THROW(tm.tm_dynfree(0), precondition_error);
}

TEST(TmInterface, RaceWithCompletionIsHarmless) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::seconds(30)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(1));
  TmInterface tm(s.server, id);
  tm.tm_dynget(4);
  // The job completes while the request message is in flight... run all
  // events; nothing must throw and accounting must balance.
  s.sim.run();
  EXPECT_EQ(s.cluster.free_cores(), 32);
}

}  // namespace
}  // namespace dbs::rms
