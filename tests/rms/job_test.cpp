#include "rms/job.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "common/assert.hpp"

namespace dbs::rms {
namespace {

std::unique_ptr<Job> make_job(JobSpec s = test::spec("j", 4, Duration::minutes(10))) {
  return std::make_unique<Job>(JobId{1}, std::move(s), test::rigid(Duration::minutes(5)),
                               Time::from_seconds(100));
}

cluster::Placement place(CoreCount cores) {
  return cluster::Placement{{{NodeId{0}, cores}}};
}

TEST(Job, ConstructionValidation) {
  JobSpec bad = test::spec("j", 0, Duration::minutes(1));
  EXPECT_THROW(Job(JobId{1}, bad, test::rigid(Duration::minutes(1)), Time::epoch()),
               precondition_error);
  bad = test::spec("j", 1, Duration::zero());
  EXPECT_THROW(Job(JobId{1}, bad, test::rigid(Duration::minutes(1)), Time::epoch()),
               precondition_error);
  bad = test::spec("j", 1, Duration::minutes(1));
  EXPECT_THROW(Job(JobId{1}, bad, nullptr, Time::epoch()), precondition_error);
  bad = test::spec("j", 1, Duration::minutes(1), "");
  EXPECT_THROW(Job(JobId{1}, bad, test::rigid(Duration::minutes(1)), Time::epoch()),
               precondition_error);
}

TEST(Job, LifecycleTransitions) {
  auto job = make_job();
  EXPECT_EQ(job->state(), JobState::Queued);
  EXPECT_FALSE(job->started());

  job->mark_started(Time::from_seconds(200), place(4), false);
  EXPECT_EQ(job->state(), JobState::Running);
  EXPECT_TRUE(job->is_running());
  EXPECT_EQ(job->start_time(), Time::from_seconds(200));
  EXPECT_EQ(job->walltime_end(), Time::from_seconds(200) + Duration::minutes(10));

  job->mark_dynqueued();
  EXPECT_EQ(job->state(), JobState::DynQueued);
  EXPECT_TRUE(job->is_running());
  job->mark_running_again();
  EXPECT_EQ(job->state(), JobState::Running);

  job->mark_completed(Time::from_seconds(500));
  EXPECT_TRUE(job->finished());
  EXPECT_EQ(job->end_time(), Time::from_seconds(500));
}

TEST(Job, InvalidTransitionsRejected) {
  auto job = make_job();
  EXPECT_THROW(job->mark_dynqueued(), precondition_error);
  EXPECT_THROW(job->mark_completed(Time::epoch()), precondition_error);
  EXPECT_THROW((void)job->start_time(), precondition_error);
  job->mark_started(Time::epoch(), place(4), false);
  EXPECT_THROW(job->mark_started(Time::epoch(), place(4), false),
               precondition_error);
}

TEST(Job, PlacementMustMatchRequest) {
  auto job = make_job();
  EXPECT_THROW(job->mark_started(Time::epoch(), place(3), false),
               precondition_error);
}

TEST(Job, ExpandAndShrink) {
  auto job = make_job();
  job->mark_started(Time::epoch(), place(4), false);
  job->expand(cluster::Placement{{{NodeId{1}, 4}}});
  EXPECT_EQ(job->allocated_cores(), 8);
  job->shrink(cluster::Placement{{{NodeId{1}, 2}}});
  EXPECT_EQ(job->allocated_cores(), 6);
  EXPECT_THROW(job->shrink(cluster::Placement{{{NodeId{2}, 1}}}),
               precondition_error);
  EXPECT_THROW(job->shrink(cluster::Placement{{{NodeId{1}, 3}}}),
               precondition_error);
}

TEST(Job, ShrinkToZeroRejected) {
  auto job = make_job();
  job->mark_started(Time::epoch(), place(4), false);
  EXPECT_THROW(job->shrink(cluster::Placement{{{NodeId{0}, 4}}}),
               precondition_error);
}

TEST(Job, RequeueResetsProgress) {
  auto job = make_job();
  job->mark_started(Time::from_seconds(10), place(4), true);
  EXPECT_TRUE(job->was_backfilled());
  job->mark_requeued();
  EXPECT_EQ(job->state(), JobState::Queued);
  EXPECT_FALSE(job->started());
  EXPECT_FALSE(job->was_backfilled());
  EXPECT_EQ(job->allocated_cores(), 0);
}

TEST(Job, DynCountersAndSatisfied) {
  auto job = make_job();
  EXPECT_FALSE(job->dyn_satisfied());  // never asked
  job->count_dyn_request();
  job->count_dyn_grant();
  EXPECT_TRUE(job->dyn_satisfied());  // every request granted
  job->count_dyn_request();
  job->count_dyn_reject();
  // One final rejection disqualifies the job even alongside grants
  // (Table II "satisfied" = all dynamic requests granted).
  EXPECT_FALSE(job->dyn_satisfied());
  EXPECT_EQ(job->dyn_requests_made(), 2);
  EXPECT_EQ(job->dyn_grants(), 1);
  EXPECT_EQ(job->dyn_rejects(), 1);
}

TEST(JobState, Names) {
  EXPECT_EQ(to_string(JobState::Queued), "queued");
  EXPECT_EQ(to_string(JobState::DynQueued), "dynqueued");
  EXPECT_EQ(to_string(JobState::Completed), "completed");
}

}  // namespace
}  // namespace dbs::rms
