#include "rms/server.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "common/assert.hpp"

namespace dbs::rms {
namespace {

using test::BareSystem;

struct CountingObserver : ServerObserver {
  int submits = 0, starts = 0, finishes = 0, requeues = 0;
  void on_submit(const Job&) override { ++submits; }
  void on_job_start(const Job&) override { ++starts; }
  void on_job_finish(const Job&) override { ++finishes; }
  void on_requeue(const Job&) override { ++requeues; }
};

TEST(Server, SubmitQueuesJobAndNotifiesScheduler) {
  BareSystem s;
  int triggers = 0;
  s.server.set_scheduler_trigger([&] { ++triggers; });
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  EXPECT_EQ(s.server.job(id).state(), JobState::Queued);
  s.sim.run();
  EXPECT_EQ(triggers, 1);
}

TEST(Server, TriggerCoalescing) {
  BareSystem s;
  int triggers = 0;
  s.server.set_scheduler_trigger([&] { ++triggers; });
  s.server.submit(test::spec("a", 1, Duration::minutes(1)),
                  test::rigid(Duration::minutes(1)));
  s.server.submit(test::spec("b", 1, Duration::minutes(1)),
                  test::rigid(Duration::minutes(1)));
  s.sim.run_until(Time::from_seconds(1));
  EXPECT_EQ(triggers, 1);  // both submissions coalesced into one wake-up
}

TEST(Server, StartJobAllocatesAndRuns) {
  BareSystem s;
  CountingObserver obs;
  s.server.add_observer(&obs);
  const JobId id = s.server.submit(test::spec("a", 12, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  EXPECT_EQ(s.server.job(id).state(), JobState::Running);
  EXPECT_EQ(s.cluster.free_cores(), 32 - 12);
  s.sim.run();
  EXPECT_EQ(s.server.job(id).state(), JobState::Completed);
  EXPECT_EQ(s.cluster.free_cores(), 32);
  EXPECT_EQ(obs.starts, 1);
  EXPECT_EQ(obs.finishes, 1);
  // Completion ~ runtime + protocol latencies; well under a minute of slack.
  const Duration turnaround =
      s.server.job(id).end_time() - s.server.job(id).start_time();
  EXPECT_GE(turnaround, Duration::minutes(5));
  EXPECT_LT(turnaround, Duration::minutes(5) + Duration::seconds(1));
}

TEST(Server, StartJobFailsWithoutCapacity) {
  BareSystem s(1, 8);
  const JobId big = s.server.submit(test::spec("big", 8, Duration::minutes(10)),
                                    test::rigid(Duration::minutes(5)));
  const JobId other = s.server.submit(test::spec("x", 4, Duration::minutes(10)),
                                      test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(big, false));
  EXPECT_FALSE(s.server.start_job(other, false));
  EXPECT_EQ(s.server.job(other).state(), JobState::Queued);
}

TEST(Server, CancelQueuedJob) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  EXPECT_TRUE(s.server.cancel(id));
  EXPECT_EQ(s.server.job(id).state(), JobState::Cancelled);
  EXPECT_FALSE(s.server.cancel(id));
  EXPECT_FALSE(s.server.cancel(JobId{999}));
}

TEST(Server, CancelRunningJobFreesCores) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 8, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(30));
  EXPECT_TRUE(s.server.cancel(id));
  EXPECT_EQ(s.cluster.free_cores(), 32);
  s.sim.run();  // any stale completion events must be harmless
  EXPECT_EQ(s.server.job(id).state(), JobState::Cancelled);
}

TEST(Server, PreemptRequeuesPreemptibleJob) {
  BareSystem s;
  CountingObserver obs;
  s.server.add_observer(&obs);
  JobSpec spec = test::spec("p", 8, Duration::minutes(10));
  spec.preemptible = true;
  const JobId id = s.server.submit(spec, test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, true));
  s.sim.run_until(Time::from_seconds(10));
  s.server.preempt(id);
  EXPECT_EQ(s.server.job(id).state(), JobState::Queued);
  EXPECT_EQ(s.cluster.free_cores(), 32);
  EXPECT_EQ(obs.requeues, 1);
  // Restart from scratch works.
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run();
  EXPECT_EQ(s.server.job(id).state(), JobState::Completed);
}

TEST(Server, PreemptRejectsNonPreemptible) {
  BareSystem s;
  const JobId id = s.server.submit(test::spec("a", 4, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  EXPECT_THROW(s.server.preempt(id), precondition_error);
}

TEST(Server, PpnValidation) {
  BareSystem s(2, 8);
  JobSpec spec = test::spec("a", 8, Duration::minutes(1));
  spec.ppn = 9;
  const JobId id = s.server.submit(spec, test::rigid(Duration::minutes(1)));
  EXPECT_THROW((void)s.server.start_job(id, false), precondition_error);
}

TEST(Server, EffectivePpnDefaultsToNodeSize) {
  BareSystem s(2, 8);
  const JobId id = s.server.submit(test::spec("a", 8, Duration::minutes(1)),
                                   test::rigid(Duration::minutes(1)));
  EXPECT_EQ(s.server.effective_ppn(s.server.job(id)), 8);
}

}  // namespace
}  // namespace dbs::rms
