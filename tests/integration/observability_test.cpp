// End-to-end observability: a run with tracing attached must produce a
// decision-audit trail — every dynamic grant/reject event carrying the
// per-protected-job measured delays and the DFS verdict — plus a metrics
// snapshot with populated iteration histograms.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../obs/json_check.hpp"
#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::batch {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

bool has_field(const std::string& line, const std::string& key,
               const std::string& value) {
  return line.find("\"" + key + "\": " + value) != std::string::npos;
}

bool is_event(const std::string& line, const std::string& cat,
              const std::string& name) {
  return has_field(line, "cat", "\"" + cat + "\"") &&
         has_field(line, "name", "\"" + name + "\"");
}

SystemConfig base_config() {
  SystemConfig c;
  c.cluster.node_count = 4;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

/// The fairness_end_to_end "delayed victim" scenario: blocker (8c, 5 min) +
/// evolver (16c, 20 min walltime, asks +8 at 2 min) + victim (16c, queued
/// at 1 min). The grab would delay the victim by 15 minutes — more than
/// the 10-minute target budget, so the DFS policy rejects it.
struct Scenario {
  std::unique_ptr<BatchSystem> sys;
  JobId evolver;
};

Scenario build_denied_scenario() {
  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::minutes(10);
  cfg.scheduler.dfs.interval = Duration::hours(1);
  Scenario s;
  s.sys = std::make_unique<BatchSystem>(cfg);
  s.sys->submit_now(test::spec("blocker", 8, Duration::minutes(5), "bob"),
                    test::rigid(Duration::minutes(5)));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(20),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), 8, 0, 1.0, Duration::zero()}});
  s.evolver = s.sys->submit_now(test::spec("evo", 16, Duration::minutes(20)),
                                std::move(app));
  s.sys->submit_at(Time::epoch() + Duration::minutes(1),
                   test::spec("victim", 16, Duration::minutes(10), "victim"),
                   [] { return test::rigid(Duration::minutes(10)); });
  return s;
}

TEST(Observability, DynRejectAuditNamesViolatedRuleAndDelays) {
  Scenario s = build_denied_scenario();
  std::ostringstream trace;
  obs::Tracer tracer;
  tracer.attach_stream(trace, obs::TraceFormat::Jsonl);
  obs::Registry registry;
  s.sys->set_sinks({&tracer, &registry});
  s.sys->run();
  tracer.close();

  // The request really was denied by the fairness policy.
  ASSERT_EQ(s.sys->recorder().record(s.evolver).dyn_grants, 0);

  const std::vector<std::string> lines = lines_of(trace.str());
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines)
    ASSERT_TRUE(test::json::is_valid(line)) << line;

  // The scheduler's dyn_reject audit event names the violated DFS rule and
  // carries the measured per-protected-job delays (the 15-minute = 900 s
  // push of the victim job).
  bool found_reject = false;
  for (const std::string& line : lines) {
    if (!is_event(line, "sched", "dyn_reject")) continue;
    found_reject = true;
    EXPECT_TRUE(has_field(line, "verdict", "\"denied-target-delay\"")) << line;
    EXPECT_TRUE(has_field(line, "reason", "\"denied-target-delay\"")) << line;
    EXPECT_NE(line.find("\"delays\": ["), std::string::npos) << line;
    EXPECT_NE(line.find("\"user\": \"victim\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"delay_s\": 900"), std::string::npos) << line;
  }
  EXPECT_TRUE(found_reject);

  // The DFS engine's own admit event agrees.
  bool found_admit = false;
  for (const std::string& line : lines) {
    if (!is_event(line, "dfs", "admit")) continue;
    if (!has_field(line, "verdict", "\"denied-target-delay\"")) continue;
    found_admit = true;
  }
  EXPECT_TRUE(found_admit);

  // Measurement events precede the decision.
  bool found_measure = false;
  for (const std::string& line : lines)
    found_measure = found_measure || is_event(line, "sched", "measure");
  EXPECT_TRUE(found_measure);

  // Registry: iteration latency histogram populated, verdict counted.
  const obs::Histogram* iter_us =
      registry.find_histogram("scheduler.iteration_us");
  ASSERT_NE(iter_us, nullptr);
  EXPECT_GT(iter_us->count(), 0u);
  ASSERT_NE(registry.find_counter("dfs.denied_target_delay"), nullptr);
  EXPECT_GT(registry.find_counter("dfs.denied_target_delay")->value(), 0u);
  ASSERT_NE(registry.find_counter("scheduler.dyn_rejected"), nullptr);
  EXPECT_GT(registry.find_counter("scheduler.dyn_rejected")->value(), 0u);

  // The per-iteration history retained by the scheduler matches the
  // iteration counter.
  EXPECT_EQ(s.sys->scheduler().history().size(),
            registry.find_counter("scheduler.iterations")->value());
  // The metrics snapshot itself is valid JSON.
  EXPECT_TRUE(test::json::is_valid(registry.to_json()));
}

TEST(Observability, GrantAuditCarriesDelaysAndProtocolEvents) {
  // Same scenario with a generous budget: the grab is granted, the victim
  // genuinely delayed, and the grant audit event carries the delays.
  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::minutes(20);
  Scenario s;
  s.sys = std::make_unique<BatchSystem>(cfg);
  s.sys->submit_now(test::spec("blocker", 8, Duration::minutes(5), "bob"),
                    test::rigid(Duration::minutes(5)));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(20),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), 8, 0, 1.0, Duration::zero()}});
  s.evolver = s.sys->submit_now(test::spec("evo", 16, Duration::minutes(20)),
                                std::move(app));
  s.sys->submit_at(Time::epoch() + Duration::minutes(1),
                   test::spec("victim", 16, Duration::minutes(10), "victim"),
                   [] { return test::rigid(Duration::minutes(10)); });

  std::ostringstream trace;
  obs::Tracer tracer;
  tracer.attach_stream(trace, obs::TraceFormat::Jsonl);
  obs::Registry registry;
  s.sys->set_sinks({&tracer, &registry});
  s.sys->run();
  tracer.close();

  ASSERT_EQ(s.sys->recorder().record(s.evolver).dyn_grants, 1);

  const std::vector<std::string> lines = lines_of(trace.str());
  bool found_grant = false;
  for (const std::string& line : lines) {
    if (!is_event(line, "sched", "dyn_grant")) continue;
    found_grant = true;
    EXPECT_TRUE(has_field(line, "verdict", "\"allowed\"")) << line;
    EXPECT_NE(line.find("\"delays\": ["), std::string::npos) << line;
    EXPECT_NE(line.find("\"user\": \"victim\""), std::string::npos) << line;
  }
  EXPECT_TRUE(found_grant);

  // The commit charge and the mom-side dyn_join protocol step both show up.
  bool found_commit = false, found_dyn_join = false, found_classify = false;
  for (const std::string& line : lines) {
    found_commit = found_commit || is_event(line, "dfs", "commit");
    found_dyn_join = found_dyn_join || is_event(line, "mom", "dyn_join");
    found_classify = found_classify || is_event(line, "sched", "classify");
  }
  EXPECT_TRUE(found_commit);
  EXPECT_TRUE(found_dyn_join);
  EXPECT_TRUE(found_classify);
  EXPECT_GT(registry.find_counter("mom.dyn_joins")->value(), 0u);
}

TEST(Observability, DetachedTracerChangesNothing) {
  // The same denied scenario run bare must behave identically — tracing is
  // observation only (and compiled out to a pointer test when detached).
  Scenario bare = build_denied_scenario();
  bare.sys->run();
  Scenario traced = build_denied_scenario();
  std::ostringstream trace;
  obs::Tracer tracer;
  tracer.attach_stream(trace, obs::TraceFormat::Jsonl);
  obs::Registry registry;
  traced.sys->set_sinks({&tracer, &registry});
  traced.sys->run();

  EXPECT_EQ(bare.sys->recorder().record(bare.evolver).dyn_grants,
            traced.sys->recorder().record(traced.evolver).dyn_grants);
  EXPECT_EQ(bare.sys->simulator().now(), traced.sys->simulator().now());
  EXPECT_EQ(bare.sys->scheduler().iterations(),
            traced.sys->scheduler().iterations());
}

}  // namespace
}  // namespace dbs::batch
