// Exact end-to-end timelines on a small cluster.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig zero_latency_config(std::size_t nodes = 2) {
  SystemConfig c;
  c.cluster.node_count = nodes;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

TEST(SmallCluster, ExactSequentialTimeline) {
  BatchSystem sys(zero_latency_config(1));
  sys.submit_now(test::spec("a", 8, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  sys.submit_now(test::spec("b", 8, Duration::minutes(10), "bob"),
                 test::rigid(Duration::minutes(10)));
  sys.run();
  const auto records = sys.recorder().records();
  EXPECT_EQ(*records[0].start, Time::epoch());
  EXPECT_EQ(*records[0].end, Time::epoch() + Duration::minutes(10));
  EXPECT_EQ(*records[1].start, Time::epoch() + Duration::minutes(10));
  EXPECT_EQ(*records[1].end, Time::epoch() + Duration::minutes(20));
}

TEST(SmallCluster, ParallelWhenFits) {
  BatchSystem sys(zero_latency_config(2));
  sys.submit_now(test::spec("a", 8, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  sys.submit_now(test::spec("b", 8, Duration::minutes(10), "bob"),
                 test::rigid(Duration::minutes(10)));
  sys.run();
  const auto records = sys.recorder().records();
  EXPECT_EQ(*records[0].start, Time::epoch());
  EXPECT_EQ(*records[1].start, Time::epoch());
}

TEST(SmallCluster, WalltimeReservationDelaysNotActualRuntime) {
  // Job a runs 2 min but reserves 10; the 16-core job waits for a's
  // *actual* end (the scheduler reacts to the completion event).
  BatchSystem sys(zero_latency_config(2));
  sys.submit_now(test::spec("a", 8, Duration::minutes(10)),
                 test::rigid(Duration::minutes(2)));
  sys.submit_now(test::spec("b", 16, Duration::minutes(5), "bob"),
                 test::rigid(Duration::minutes(5)));
  sys.run();
  const auto records = sys.recorder().records();
  EXPECT_EQ(*records[1].start, Time::epoch() + Duration::minutes(2));
}

TEST(SmallCluster, DynamicExpandShortensRuntimeExactly) {
  BatchSystem sys(zero_latency_config(2));
  wl::Behavior evo;
  evo.static_runtime = Duration::seconds(1000);
  evo.evolving = true;
  evo.ask_cores = 4;
  const JobId id = sys.submit_now(test::spec("e", 8, Duration::seconds(1000)),
                                  apps::make_application(evo));
  sys.run();
  const auto& r = sys.recorder().record(id);
  // Ask at 160s, granted instantly (zero latency), PaperDet: total 1000*8/12.
  EXPECT_EQ(*r.end - *r.start, Duration::micros(666'666'667));
}

TEST(SmallCluster, FragmentationMakesPlannedStartWaitGracefully) {
  // 2 nodes x 8. Two 4-core jobs split across both nodes (spread policy),
  // then an 8-core whole-node job: aggregate 8 cores free but fragmented.
  SystemConfig c = zero_latency_config(2);
  c.scheduler.allocation_policy = cluster::AllocationPolicy::Spread;
  BatchSystem sys(c);
  sys.submit_now(test::spec("f1", 4, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  sys.submit_now(test::spec("f2", 4, Duration::minutes(10), "bob"),
                 test::rigid(Duration::minutes(2)));
  sys.submit_at(Time::from_seconds(10),
                test::spec("whole", 8, Duration::minutes(5), "carol"),
                [] { return test::rigid(Duration::minutes(5)); });
  sys.run();
  const auto records = sys.recorder().records();
  // The whole-node job cannot start at t=10 despite 8 free cores in
  // aggregate; it starts when f2 vacates its node at t=120.
  EXPECT_EQ(*records[2].start, Time::epoch() + Duration::minutes(2));
}

TEST(SmallCluster, AccountingBalancedAtEnd) {
  BatchSystem sys(zero_latency_config(2));
  for (int i = 0; i < 10; ++i)
    sys.submit_at(Time::from_seconds(i * 7),
                  test::spec("j" + std::to_string(i), 1 + (i % 8),
                             Duration::minutes(3), "u" + std::to_string(i % 3)),
                  [] { return test::rigid(Duration::minutes(2)); });
  sys.run();
  EXPECT_EQ(sys.cluster().free_cores(), 16);
  EXPECT_EQ(sys.cluster().used_cores(), 0);
  for (const auto& r : sys.recorder().records()) EXPECT_TRUE(r.completed());
}

}  // namespace
}  // namespace dbs::batch
