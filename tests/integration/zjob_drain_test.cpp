// ESP Z-job semantics: once a Z job is queued it has the highest priority,
// no other job starts, and backfilling is disabled — but running evolving
// jobs may still obtain resources dynamically.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig config() {
  SystemConfig c;
  c.cluster.node_count = 4;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

rms::JobSpec z_spec() {
  rms::JobSpec z = test::spec("Z", 32, Duration::minutes(2), "zuser");
  z.exclusive_priority = true;
  z.type_tag = "Z";
  return z;
}

TEST(ZJobDrain, NothingStartsWhileZQueued) {
  BatchSystem sys(config());
  sys.submit_now(test::spec("run", 16, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  sys.submit_at(Time::from_seconds(60), z_spec(),
                [] { return test::rigid(Duration::minutes(2)); });
  // Small jobs that would trivially fit in the 16 idle cores.
  for (int i = 0; i < 3; ++i)
    sys.submit_at(Time::from_seconds(90 + i),
                  test::spec("s" + std::to_string(i), 4, Duration::minutes(1),
                             "u" + std::to_string(i)),
                  [] { return test::rigid(Duration::minutes(1)); });
  sys.run();
  const auto records = sys.recorder().records();
  const Time z_start = *records[1].start;
  EXPECT_EQ(z_start, Time::epoch() + Duration::minutes(10));
  for (int i = 2; i <= 4; ++i)
    EXPECT_GE(*records[static_cast<std::size_t>(i)].start, z_start) << i;
}

TEST(ZJobDrain, RunningEvolvingJobStillGetsResources) {
  BatchSystem sys(config());
  wl::Behavior evo;
  evo.static_runtime = Duration::minutes(10);
  evo.evolving = true;
  evo.ask_cores = 4;
  // Evolving job asks at t=96s — while Z (submitted at 30s) is draining.
  const JobId e = sys.submit_now(test::spec("evo", 16, Duration::minutes(10)),
                                 apps::make_application(evo));
  sys.submit_at(Time::from_seconds(30), z_spec(),
                [] { return test::rigid(Duration::minutes(2)); });
  sys.run();
  EXPECT_EQ(sys.recorder().record(e).dyn_grants, 1);
}

TEST(ZJobDrain, TwoZJobsRunSequentially) {
  BatchSystem sys(config());
  sys.submit_now(z_spec(), test::rigid(Duration::minutes(2)));
  sys.submit_at(Time::from_seconds(1), z_spec(),
                [] { return test::rigid(Duration::minutes(2)); });
  sys.submit_at(Time::from_seconds(2),
                test::spec("after", 4, Duration::minutes(1)),
                [] { return test::rigid(Duration::minutes(1)); });
  sys.run();
  const auto records = sys.recorder().records();
  EXPECT_EQ(*records[0].start, Time::epoch());
  EXPECT_EQ(*records[1].start, Time::epoch() + Duration::minutes(2));
  EXPECT_GE(*records[2].start, *records[1].start);
}

}  // namespace
}  // namespace dbs::batch
