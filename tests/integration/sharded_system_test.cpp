// The sharded-scheduling determinism contract, end to end: a ShardedSystem
// run at ANY worker-thread count produces byte-identical per-shard traces,
// identical merged metrics registries and identical summaries — because
// shards share nothing mutable and every merge happens in shard-index
// order. Also pins the routing invariants (each job lands on exactly one
// shard; streaming submission matches materialized submission).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "batch/sharded_system.hpp"
#include "metrics/report.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "workload/source.hpp"

namespace dbs::batch {
namespace {

SystemConfig machine_config() {
  SystemConfig cfg;
  cfg.cluster.node_count = 16;  // 4 nodes x 8 cores per shard at K=4
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 4;
  return cfg;
}

ShardConfig shard_config(std::size_t threads) {
  ShardConfig sc;
  sc.shards = 4;
  sc.map = ShardMapKind::Range;
  sc.policy = core::RoutePolicy::UserHash;
  sc.threads = threads;
  return sc;
}

/// 160 jobs over 16 users, mixed sizes, every 4th evolving — enough to
/// exercise planning, backfill and the dynamic protocol on every shard.
wl::Workload mixed_workload() {
  wl::Workload w;
  for (int i = 0; i < 160; ++i) {
    wl::SubmitSpec s;
    s.at = Time::from_seconds(i * 20);
    s.spec.name = "job" + std::to_string(i);
    s.spec.cred = {"user" + std::to_string(i % 16), "grp", "", "batch", ""};
    s.spec.cores = static_cast<CoreCount>(1 << (i % 5));  // 1..16
    s.spec.walltime = Duration::minutes(40);
    s.behavior.static_runtime = Duration::minutes(5 + (i * 3) % 20);
    if (i % 4 == 0) {
      s.behavior.evolving = true;
      s.behavior.ask_cores = 4;
    }
    w.total_cores += s.spec.cores;
    w.jobs.push_back(std::move(s));
  }
  return w;
}

/// Host-timing "wall_us" lines record real wall-clock per iteration and
/// are the one legitimately nondeterministic part of a trace; every
/// byte-identity comparison excludes them (same idiom as
/// parallel_determinism_test and pipeline_golden_test).
std::string drop_lines(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

struct ShardedRun {
  std::vector<std::string> traces;  ///< per-shard JSONL, byte-comparable
  std::vector<metrics::WorkloadSummary> shard_summaries;
  metrics::WorkloadSummary merged;
  std::string registry_json;
  std::vector<std::uint64_t> routed_jobs;
};

ShardedRun run_sharded(std::size_t threads, bool streaming) {
  const wl::Workload workload = mixed_workload();
  ShardedSystem sys(machine_config(), shard_config(threads));

  std::vector<std::unique_ptr<std::ostringstream>> streams;
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  for (std::size_t k = 0; k < sys.shard_count(); ++k) {
    streams.push_back(std::make_unique<std::ostringstream>());
    tracers.push_back(std::make_unique<obs::Tracer>());
    tracers.back()->attach_stream(*streams.back(), obs::TraceFormat::Jsonl);
    sys.set_shard_sinks(k, tracers.back().get());
  }

  if (streaming) {
    wl::WorkloadSource source(workload);
    sys.submit_stream(source, 64);
  } else {
    sys.submit_workload(workload);
  }
  sys.run();

  ShardedRun r;
  for (std::size_t k = 0; k < sys.shard_count(); ++k) {
    tracers[k]->close();
    r.traces.push_back(drop_lines(streams[k]->str(), "wall_us"));
    r.shard_summaries.push_back(sys.shard_summary(k));
    r.routed_jobs.push_back(sys.router().routed_jobs(k));
  }
  r.merged = sys.summary();
  obs::Registry merged_registry;
  sys.merge_registries(merged_registry);
  // The scheduler's iteration/stage wall-clock histograms ("*_us") are
  // host timing, like the trace's wall_us lines; everything else in the
  // merged registry must be byte-stable.
  r.registry_json = drop_lines(merged_registry.to_json(), "_us");
  return r;
}

void expect_summaries_equal(const metrics::WorkloadSummary& a,
                            const metrics::WorkloadSummary& b) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.evolving_jobs, b.evolving_jobs);
  EXPECT_EQ(a.satisfied_dyn_jobs, b.satisfied_dyn_jobs);
  EXPECT_EQ(a.granted_dyn_requests, b.granted_dyn_requests);
  EXPECT_EQ(a.backfilled_jobs, b.backfilled_jobs);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.max_wait, b.max_wait);
  EXPECT_EQ(a.avg_turnaround, b.avg_turnaround);
}

TEST(ShardedSystem, ByteIdenticalAcrossThreadCounts) {
  const ShardedRun serial = run_sharded(1, /*streaming=*/false);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const ShardedRun parallel = run_sharded(threads, /*streaming=*/false);
    ASSERT_EQ(parallel.traces.size(), serial.traces.size());
    for (std::size_t k = 0; k < serial.traces.size(); ++k) {
      EXPECT_FALSE(serial.traces[k].empty()) << k;
      EXPECT_EQ(parallel.traces[k], serial.traces[k])
          << "shard " << k << " trace diverged at " << threads << " threads";
      expect_summaries_equal(parallel.shard_summaries[k],
                             serial.shard_summaries[k]);
    }
    EXPECT_EQ(parallel.registry_json, serial.registry_json);
    expect_summaries_equal(parallel.merged, serial.merged);
    EXPECT_EQ(parallel.routed_jobs, serial.routed_jobs);
  }
}

TEST(ShardedSystem, EveryJobLandsOnExactlyOneShard) {
  const ShardedRun run = run_sharded(2, /*streaming=*/false);
  std::uint64_t routed = 0;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  for (std::size_t k = 0; k < run.routed_jobs.size(); ++k) {
    routed += run.routed_jobs[k];
    submitted += run.shard_summaries[k].jobs_submitted;
    completed += run.shard_summaries[k].jobs_completed;
    // User-hash over 16 users spreads across all four shards.
    EXPECT_GT(run.routed_jobs[k], 0u) << k;
  }
  EXPECT_EQ(routed, 160u);
  EXPECT_EQ(submitted, 160);
  EXPECT_EQ(completed, 160);
  EXPECT_EQ(run.merged.jobs_submitted, 160);
  EXPECT_EQ(run.merged.jobs_completed, 160);
}

TEST(ShardedSystem, StreamingSubmissionMatchesMaterialized) {
  const ShardedRun materialized = run_sharded(2, /*streaming=*/false);
  const ShardedRun streamed = run_sharded(2, /*streaming=*/true);
  ASSERT_EQ(streamed.traces.size(), materialized.traces.size());
  for (std::size_t k = 0; k < materialized.traces.size(); ++k)
    EXPECT_EQ(streamed.traces[k], materialized.traces[k]) << k;
  EXPECT_EQ(streamed.registry_json, materialized.registry_json);
  expect_summaries_equal(streamed.merged, materialized.merged);
}

TEST(ShardedSystem, SingleShardMatchesPlainBatchSystem) {
  // K=1 sharding is the identity: same trace and summary as an unsharded
  // BatchSystem on the whole machine.
  const wl::Workload workload = mixed_workload();

  ShardConfig sc;
  sc.shards = 1;
  ShardedSystem sharded(machine_config(), sc);
  std::ostringstream sharded_trace;
  obs::Tracer sharded_tracer;
  sharded_tracer.attach_stream(sharded_trace, obs::TraceFormat::Jsonl);
  sharded.set_shard_sinks(0, &sharded_tracer);
  sharded.submit_workload(workload);
  sharded.run();
  sharded_tracer.close();

  BatchSystem plain(machine_config());
  std::ostringstream plain_trace;
  obs::Tracer plain_tracer;
  obs::Registry plain_registry;
  plain_tracer.attach_stream(plain_trace, obs::TraceFormat::Jsonl);
  plain.set_sinks(obs::Sinks(&plain_tracer, &plain_registry));
  plain.submit_workload(workload);
  plain.run();
  plain_tracer.close();

  EXPECT_EQ(drop_lines(sharded_trace.str(), "wall_us"),
            drop_lines(plain_trace.str(), "wall_us"));
  expect_summaries_equal(sharded.summary(),
                         metrics::summarize(plain.recorder()));
}

}  // namespace
}  // namespace dbs::batch
