// The two alternative §II-B strategies: preempting backfilled jobs to serve
// dynamic requests, and a reserved dynamic partition.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig config(bool preemption, CoreCount partition = 0) {
  SystemConfig c;
  c.cluster.node_count = 2;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.allow_preemption = preemption;
  c.scheduler.dynamic_partition_cores = partition;
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

TEST(PreemptionIntegration, BackfilledJobSacrificedForDynRequest) {
  BatchSystem sys(config(/*preemption=*/true));
  // Evolver: 8 cores, asks +8 at t=60.
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 8, 0, 1.0, Duration::zero()}});
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(12)),
                                   std::move(app));
  // A waiting 16-core job forces the next small job to count as backfill.
  sys.submit_now(test::spec("waits", 16, Duration::minutes(5), "bob"),
                 test::rigid(Duration::minutes(5)));
  rms::JobSpec bf = test::spec("bf", 8, Duration::minutes(5), "carol");
  bf.preemptible = true;
  const JobId victim = sys.submit_now(bf, test::rigid(Duration::minutes(5)));
  sys.run();
  const auto& evo_rec = sys.recorder().record(evo);
  EXPECT_EQ(evo_rec.dyn_grants, 1);
  const auto& victim_rec = sys.recorder().record(victim);
  EXPECT_EQ(victim_rec.requeues, 1);
  ASSERT_TRUE(victim_rec.completed());  // eventually restarted and finished
}

TEST(PreemptionIntegration, DisabledMeansRejection) {
  BatchSystem sys(config(/*preemption=*/false));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 8, 0, 1.0, Duration::zero()}});
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(12)),
                                   std::move(app));
  sys.submit_now(test::spec("waits", 16, Duration::minutes(5), "bob"),
                 test::rigid(Duration::minutes(5)));
  rms::JobSpec bf = test::spec("bf", 8, Duration::minutes(5), "carol");
  bf.preemptible = true;
  sys.submit_now(bf, test::rigid(Duration::minutes(5)));
  sys.run();
  EXPECT_EQ(sys.recorder().record(evo).dyn_grants, 0);
}

TEST(PreemptionIntegration, NonPreemptibleJobsAreSafe) {
  BatchSystem sys(config(/*preemption=*/true));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 8, 0, 1.0, Duration::zero()}});
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(12)),
                                   std::move(app));
  sys.submit_now(test::spec("waits", 16, Duration::minutes(5), "bob"),
                 test::rigid(Duration::minutes(5)));
  const JobId other = sys.submit_now(
      test::spec("bf", 8, Duration::minutes(5), "carol"),
      test::rigid(Duration::minutes(5)));
  sys.run();
  EXPECT_EQ(sys.recorder().record(evo).dyn_grants, 0);
  EXPECT_EQ(sys.recorder().record(other).requeues, 0);
}

TEST(PartitionIntegration, PartitionGuaranteesDynamicHeadroom) {
  BatchSystem sys(config(false, /*partition=*/4));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 4, 0, 1.0, Duration::zero()}});
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(12)),
                                   std::move(app));
  // A rigid stream that would otherwise fill the machine completely.
  sys.submit_now(test::spec("r1", 4, Duration::minutes(30), "bob"),
                 test::rigid(Duration::minutes(30)));
  sys.submit_now(test::spec("r2", 4, Duration::minutes(30), "carol"),
                 test::rigid(Duration::minutes(30)));
  sys.submit_now(test::spec("r3", 4, Duration::minutes(30), "dave"),
                 test::rigid(Duration::minutes(30)));
  sys.run();
  // Only 12 of 16 cores were available to static jobs (evo + r1 fit
  // exactly; r2 and r3 must wait for the evolving job to end) and the
  // 4-core partition served the dynamic request.
  EXPECT_EQ(sys.recorder().record(evo).dyn_grants, 1);
  const auto records = sys.recorder().records();
  EXPECT_EQ(*records[1].start, Time::epoch());  // r1 starts immediately
  EXPECT_GE(*records[2].start, *records[0].end);
  EXPECT_GE(*records[3].start, *records[0].end);
}

TEST(PartitionIntegration, ZeroPartitionMeansFullMachineForStatic) {
  BatchSystem sys(config(false, 0));
  sys.submit_now(test::spec("full", 16, Duration::minutes(5)),
                 test::rigid(Duration::minutes(5)));
  sys.run();
  EXPECT_NEAR(sys.recorder().record(JobId{0}).wait_time().as_seconds(), 0.0,
              1.0);
}

}  // namespace
}  // namespace dbs::batch
