// Flight-recorder end-to-end: a recorded run round-trips through the
// binary store — per-job index lookups return the full decision history,
// the decision stream verifies byte-for-byte against the JSONL trace of
// the same run, summary totals agree with the metrics registry, the
// ParallelRunner writes one indexed shard per replication, and the
// time-series fold produces the utilization and per-user delay curves.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"
#include "batch/parallel_runner.hpp"
#include "metrics/timeseries.hpp"
#include "obs/recorder/manifest.hpp"
#include "obs/recorder/query.hpp"
#include "obs/recorder/reader.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::batch {
namespace {

namespace rec = obs::rec;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "flight_recorder_" + name;
}

SystemConfig base_config() {
  SystemConfig c;
  c.cluster.node_count = 4;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

/// Blocker + evolving grower + queued victim (the fairness scenario):
/// produces starts, backfills, a dynamic request, a DFS verdict and real
/// queueing delay for the victim's user.
void submit_scenario(BatchSystem& sys) {
  sys.submit_now(test::spec("blocker", 8, Duration::minutes(5), "bob"),
                 test::rigid(Duration::minutes(5)));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(20),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), 8, 0, 1.0, Duration::zero()}});
  sys.submit_now(test::spec("evo", 16, Duration::minutes(20), "eve"),
                 std::move(app));
  sys.submit_at(Time::epoch() + Duration::minutes(1),
                test::spec("victim", 16, Duration::minutes(10), "victim"),
                [] { return test::rigid(Duration::minutes(10)); });
}

struct RecordedRun {
  std::string record_path;
  std::string trace_path;
  obs::Registry registry;
};

/// Runs the scenario once with tracer + recorder attached.
std::unique_ptr<RecordedRun> record_run(const std::string& tag) {
  auto run = std::make_unique<RecordedRun>();
  run->record_path = temp_path(tag + ".dbsr");
  run->trace_path = temp_path(tag + ".jsonl");

  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::minutes(10);
  BatchSystem sys(cfg);

  obs::Tracer tracer;
  EXPECT_TRUE(tracer.open(run->trace_path, obs::TraceFormat::Jsonl));
  rec::FlightRecorder recorder;
  EXPECT_TRUE(recorder.open(run->record_path, 32));
  sys.set_sinks({&tracer, &run->registry, &recorder});
  submit_scenario(sys);
  sys.run();
  tracer.close();
  EXPECT_TRUE(recorder.finalize());
  return run;
}

TEST(FlightRecorder, SummaryTotalsMatchRegistryCounters) {
  auto run = record_run("summary");
  rec::RecordReader reader;
  ASSERT_TRUE(reader.open(run->record_path)) << reader.error();

  const rec::Summary s = rec::summarize(reader);
  EXPECT_EQ(s.record_count, reader.record_count());
  EXPECT_GT(s.decision_records, 0u);
  EXPECT_EQ(s.capacity, 32);

  const auto counter = [&](const char* name) {
    const obs::Counter* c = run->registry.find_counter(name);
    return c == nullptr ? 0u : c->value();
  };
  EXPECT_EQ(s.count(rec::RecordType::Submit), counter("server.jobs_submitted"));
  EXPECT_EQ(s.count(rec::RecordType::Start), counter("server.jobs_started"));
  EXPECT_EQ(s.count(rec::RecordType::Finish), counter("server.jobs_finished"));
  EXPECT_EQ(s.count(rec::RecordType::DynRequest), counter("dyn.requests"));
  EXPECT_EQ(s.count(rec::RecordType::DynGrant), counter("dyn.grants"));
  EXPECT_EQ(s.count(rec::RecordType::DynReject), counter("dyn.rejects"));

  std::remove(run->record_path.c_str());
  std::remove(run->trace_path.c_str());
}

TEST(FlightRecorder, DecisionStreamVerifiesAgainstJsonlTrace) {
  auto run = record_run("verify");
  rec::RecordReader reader;
  ASSERT_TRUE(reader.open(run->record_path)) << reader.error();

  const rec::VerifyResult result =
      rec::verify_against_trace(reader, run->trace_path);
  EXPECT_GT(result.compared, 0u);
  EXPECT_TRUE(result.ok());
  for (const std::string& m : result.mismatches) ADD_FAILURE() << m;

  std::remove(run->record_path.c_str());
  std::remove(run->trace_path.c_str());
}

TEST(FlightRecorder, JobIndexMatchesFullScanAndCarriesDecisions) {
  auto run = record_run("jobindex");
  rec::RecordReader reader;
  ASSERT_TRUE(reader.open(run->record_path)) << reader.error();

  const std::vector<std::uint64_t> jobs = reader.jobs();
  ASSERT_FALSE(jobs.empty());
  for (const std::uint64_t job : jobs) {
    std::vector<rec::PackedRecord> scanned;
    reader.scan_all([&](const rec::PackedRecord& r) {
      if (r.job == job || (r.other == job && r.other != r.job))
        scanned.push_back(r);
    });
    const std::vector<rec::PackedRecord> indexed = reader.for_job(job);
    ASSERT_EQ(indexed.size(), scanned.size()) << "job " << job;
    for (std::size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(indexed[i].t_us, scanned[i].t_us);
      EXPECT_EQ(indexed[i].type, scanned[i].type);
    }
  }

  // Every started job's history interleaves lifecycle and decision lines,
  // and the decision lines round-trip through rms::decision_to_json.
  bool saw_decision_line = false;
  for (const std::uint64_t job : jobs) {
    for (const rec::JobHistoryLine& line : rec::job_history(reader, job)) {
      if (!line.is_decision) continue;
      saw_decision_line = true;
      EXPECT_NE(line.json.find("\"kind\": "), std::string::npos) << line.json;
      EXPECT_NE(line.json.find("\"applied\": "), std::string::npos)
          << line.json;
    }
  }
  EXPECT_TRUE(saw_decision_line);

  std::remove(run->record_path.c_str());
  std::remove(run->trace_path.c_str());
}

TEST(FlightRecorder, ParallelRunnerWritesOneIndexedShardPerReplication) {
  const std::string base = temp_path("shards.dbsr");
  constexpr std::size_t kReplications = 3;

  ParallelRunner runner(2);
  obs::Registry merged;
  rec::Manifest manifest;
  const std::vector<int> results = runner.map_recorded<int>(
      kReplications, base, 32,
      [&](std::size_t index, obs::Registry& registry,
          rec::FlightRecorder& recorder) {
        BatchSystem sys(base_config());
        sys.set_sinks({nullptr, &registry, &recorder});
        submit_scenario(sys);
        // Replications differ: later ones add extra rigid load.
        for (std::size_t j = 0; j < index; ++j)
          sys.submit_now(test::spec("extra", 4, Duration::minutes(3), "carl"),
                         test::rigid(Duration::minutes(3)));
        sys.run();
        return static_cast<int>(index);
      },
      &merged, manifest);

  EXPECT_EQ(results, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(manifest.shards.size(), kReplications);
  EXPECT_EQ(manifest.shards[0].path, base);
  EXPECT_EQ(manifest.shards[1].path, base + ".rep1");

  // Every shard is a valid, indexed file; summary totals across shards
  // match the merged registry exactly.
  std::uint64_t submits = 0, starts = 0, finishes = 0, records = 0;
  for (const rec::ManifestShard& shard : manifest.shards) {
    rec::RecordReader reader;
    ASSERT_TRUE(reader.open(shard.path)) << reader.error();
    EXPECT_EQ(reader.record_count(), shard.records);
    const rec::Summary s = rec::summarize(reader);
    submits += s.count(rec::RecordType::Submit);
    starts += s.count(rec::RecordType::Start);
    finishes += s.count(rec::RecordType::Finish);
    records += s.record_count;
  }
  EXPECT_EQ(records, manifest.total_records());
  EXPECT_EQ(submits, merged.find_counter("server.jobs_submitted")->value());
  EXPECT_EQ(starts, merged.find_counter("server.jobs_started")->value());
  EXPECT_EQ(finishes, merged.find_counter("server.jobs_finished")->value());

  for (const rec::ManifestShard& shard : manifest.shards)
    std::remove(shard.path.c_str());
}

TEST(FlightRecorder, TimeseriesCurvesFromRecordedRun) {
  auto run = record_run("timeseries");
  rec::RecordReader reader;
  ASSERT_TRUE(reader.open(run->record_path)) << reader.error();

  metrics::TimeseriesOptions options;
  options.bucket_s = 60;
  const metrics::Timeseries ts = metrics::fold_timeseries(reader, options);
  ASSERT_FALSE(ts.buckets.empty());
  EXPECT_EQ(ts.capacity, 32);

  // Utilization is a real fraction, and the busy opening minute (24 of 32
  // cores running) is reflected in the first bucket.
  for (const metrics::TimeseriesBucket& b : ts.buckets) {
    EXPECT_GE(b.utilization, 0.0);
    EXPECT_LE(b.utilization, 1.0);
    // Per-user usage partitions total usage.
    double user_sum = 0.0;
    for (const auto& [user, usage] : b.user_usage_core_s) user_sum += usage;
    EXPECT_NEAR(user_sum, b.used_core_s, 1e-6);
  }
  EXPECT_GT(ts.buckets.front().utilization, 0.5);

  // The victim queues behind the evolving job, so its user accumulates
  // waiting time; the cumulative curve is monotone.
  const metrics::TimeseriesBucket& last = ts.buckets.back();
  ASSERT_TRUE(last.user_cum_delay_s.count("victim"));
  EXPECT_GT(last.user_cum_delay_s.at("victim"), 0.0);
  double prev = 0.0;
  for (const metrics::TimeseriesBucket& b : ts.buckets) {
    const auto it = b.user_cum_delay_s.find("victim");
    const double cum = it == b.user_cum_delay_s.end() ? 0.0 : it->second;
    EXPECT_GE(cum, prev);
    prev = cum;
  }

  std::remove(run->record_path.c_str());
  std::remove(run->trace_path.c_str());
}

}  // namespace
}  // namespace dbs::batch
