// The streaming replay contract: submit_stream with ANY look-ahead window
// produces byte-for-byte the decision stream of submit_workload on the
// same jobs, and the O(live) modes (job retirement, streaming metrics)
// change no decision and no summary digit. This is what makes the
// bounded-memory replay engine trustworthy: its output is defined to be
// the materialized run's output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "batch/batch_system.hpp"
#include "metrics/report.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "workload/swf/swf_gen.hpp"
#include "workload/swf/swf_source.hpp"

namespace dbs {
namespace {

std::string drop_lines(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::string make_trace() {
  wl::swf::SwfGenParams gp;
  gp.jobs = 250;
  gp.seed = 5;
  std::ostringstream out;
  wl::swf::generate_swf(out, gp);
  return out.str();
}

batch::SystemConfig base_config(bool retire, bool streaming_metrics) {
  batch::SystemConfig cfg;
  cfg.cluster.node_count = 16;
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 4;
  cfg.retire_finished_jobs = retire;
  cfg.streaming_metrics = streaming_metrics;
  return cfg;
}

struct RunOutput {
  std::string trace;
  metrics::WorkloadSummary summary;
  std::uint64_t retired = 0;
};

/// window == 0 selects the materialized path (submit_workload).
RunOutput run_replay(const std::string& swf_text, std::size_t window,
                     bool retire, bool streaming_metrics) {
  wl::swf::SwfSourceConfig scfg;
  scfg.overlay_dynamic_fraction = 0.3;
  std::istringstream in(swf_text);
  wl::swf::SwfSource source(in, scfg);
  source.set_max_cores(16 * 8);

  batch::BatchSystem system(base_config(retire, streaming_metrics));
  obs::Registry registry;
  std::ostringstream trace;
  obs::Tracer tracer;
  tracer.attach_stream(trace, obs::TraceFormat::Jsonl);
  system.set_sinks({&tracer, &registry});

  if (window == 0) {
    wl::Workload workload;
    wl::SubmitSpec s;
    while (source.next(s)) workload.jobs.push_back(s);
    system.submit_workload(workload);
  } else {
    system.submit_stream(source, window);
  }
  system.run();
  tracer.close();

  RunOutput out;
  out.trace = drop_lines(trace.str(), "wall_us");
  out.summary = metrics::summarize(system.recorder());
  out.retired = system.server().jobs().retired_count();
  return out;
}

void expect_summaries_equal(const metrics::WorkloadSummary& a,
                            const metrics::WorkloadSummary& b) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.evolving_jobs, b.evolving_jobs);
  EXPECT_EQ(a.satisfied_dyn_jobs, b.satisfied_dyn_jobs);
  EXPECT_EQ(a.granted_dyn_requests, b.granted_dyn_requests);
  EXPECT_EQ(a.backfilled_jobs, b.backfilled_jobs);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.throughput_jobs_per_min, b.throughput_jobs_per_min);
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.max_wait, b.max_wait);
  EXPECT_EQ(a.avg_turnaround, b.avg_turnaround);
}

TEST(ReplayEquivalence, StreamingMatchesMaterializedForAnyWindow) {
  const std::string swf = make_trace();
  const RunOutput materialized = run_replay(swf, 0, false, false);
  ASSERT_FALSE(materialized.trace.empty());
  ASSERT_GT(materialized.summary.jobs_completed, 0u);
  for (const std::size_t window : {std::size_t{1}, std::size_t{7},
                                   std::size_t{64}, std::size_t{100000}}) {
    const RunOutput streamed = run_replay(swf, window, false, false);
    EXPECT_EQ(streamed.trace, materialized.trace)
        << "decision stream diverged at window " << window;
    expect_summaries_equal(streamed.summary, materialized.summary);
  }
}

TEST(ReplayEquivalence, RetirementAndStreamingMetricsChangeNothing) {
  const std::string swf = make_trace();
  const RunOutput materialized = run_replay(swf, 0, false, false);
  const RunOutput lean = run_replay(swf, 32, true, true);
  EXPECT_EQ(lean.trace, materialized.trace);
  expect_summaries_equal(lean.summary, materialized.summary);
  // Retirement actually ran: every completed job's storage was reclaimed.
  EXPECT_EQ(lean.retired, materialized.summary.jobs_completed);
}

TEST(ReplayEquivalence, RetirementAloneKeepsMaterializedMetricsIntact) {
  // Retiring Job storage must not disturb the Recorder's materialized
  // records (it keeps its own copies).
  const std::string swf = make_trace();
  const RunOutput materialized = run_replay(swf, 0, false, false);
  const RunOutput retired = run_replay(swf, 16, true, false);
  EXPECT_EQ(retired.trace, materialized.trace);
  expect_summaries_equal(retired.summary, materialized.summary);
}

}  // namespace
}  // namespace dbs
