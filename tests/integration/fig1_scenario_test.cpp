// The paper's Fig. 1 scenario: a dynamic allocation to running job A delays
// queued job C's reservation — and the DFS policies control whether that is
// allowed.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

// 6 nodes x 8 cores; "hours" compressed to minutes for test speed.
SystemConfig fig1_config(core::DfsPolicy policy,
                         Duration single_limit = Duration::zero()) {
  SystemConfig c;
  c.cluster.node_count = 6;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  c.scheduler.dfs.policy = policy;
  c.scheduler.dfs.defaults.single_delay = single_limit;
  return c;
}

struct Fig1 {
  JobId a, b, c;
  std::unique_ptr<BatchSystem> sys;
};

// Job A: 2 nodes for 8 "hours" (minutes), asks for 2 more nodes at t=2min.
// Job B: 2 nodes for 4 minutes. Job C: queued, needs 4 nodes.
Fig1 build(core::DfsPolicy policy, Duration single_limit = Duration::zero()) {
  Fig1 f;
  f.sys = std::make_unique<BatchSystem>(fig1_config(policy, single_limit));
  auto app_a = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(8),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), /*grow=*/16, 0, 1.0, Duration::zero()}});
  f.a = f.sys->submit_now(test::spec("A", 16, Duration::minutes(8)),
                          std::move(app_a));
  f.b = f.sys->submit_now(test::spec("B", 16, Duration::minutes(4), "bob"),
                          test::rigid(Duration::minutes(4)));
  f.c = f.sys->submit_now(test::spec("C", 32, Duration::minutes(4), "carol"),
                          test::rigid(Duration::minutes(4)));
  return f;
}

TEST(Fig1Scenario, WithoutFairnessDynamicDelaysC) {
  Fig1 f = build(core::DfsPolicy::None);
  f.sys->run();
  // A grabbed nodes 4-5 at t=2; C could have started at t=4 (B's end) but
  // now must wait for A's walltime end at t=8.
  EXPECT_EQ(f.sys->recorder().record(f.a).dyn_grants, 1);
  EXPECT_EQ(*f.sys->recorder().record(f.c).start,
            Time::epoch() + Duration::minutes(8));
}

TEST(Fig1Scenario, SingleJobDelayPolicyProtectsC) {
  // C may be delayed at most 1 minute; A's grab would delay it 4 -> denied.
  Fig1 f = build(core::DfsPolicy::SingleJobDelay, Duration::minutes(1));
  f.sys->run();
  EXPECT_EQ(f.sys->recorder().record(f.a).dyn_grants, 0);
  EXPECT_GE(f.sys->recorder().record(f.a).dyn_rejects, 1);
  EXPECT_EQ(*f.sys->recorder().record(f.c).start,
            Time::epoch() + Duration::minutes(4));
}

TEST(Fig1Scenario, GenerousSingleLimitAllowsGrab) {
  Fig1 f = build(core::DfsPolicy::SingleJobDelay, Duration::minutes(30));
  f.sys->run();
  EXPECT_EQ(f.sys->recorder().record(f.a).dyn_grants, 1);
}

TEST(Fig1Scenario, DelayPermissionZeroBlocksAnyDelay) {
  SystemConfig cfg = fig1_config(core::DfsPolicy::TargetDelay);
  cfg.scheduler.dfs.user["carol"] = {/*delay_perm=*/false, {}, {}};
  BatchSystem sys(cfg);
  auto app_a = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(8),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), 16, 0, 1.0, Duration::zero()}});
  const JobId a = sys.submit_now(test::spec("A", 16, Duration::minutes(8)),
                                 std::move(app_a));
  sys.submit_now(test::spec("B", 16, Duration::minutes(4), "bob"),
                 test::rigid(Duration::minutes(4)));
  sys.submit_now(test::spec("C", 32, Duration::minutes(4), "carol"),
                 test::rigid(Duration::minutes(4)));
  sys.run();
  EXPECT_EQ(sys.recorder().record(a).dyn_grants, 0);
}

TEST(Fig1Scenario, SameUserDelayIsIgnored) {
  // C belongs to A's user: the delay does not count, the grab is allowed
  // even under a strict policy.
  SystemConfig cfg = fig1_config(core::DfsPolicy::SingleJobDelay,
                                 Duration::seconds(1));
  BatchSystem sys(cfg);
  auto app_a = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(8),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), 16, 0, 1.0, Duration::zero()}});
  const JobId a = sys.submit_now(test::spec("A", 16, Duration::minutes(8)),
                                 std::move(app_a));
  sys.submit_now(test::spec("B", 16, Duration::minutes(4), "bob"),
                 test::rigid(Duration::minutes(4)));
  sys.submit_now(test::spec("C", 32, Duration::minutes(4), "alice"),
                 test::rigid(Duration::minutes(4)));
  sys.run();
  EXPECT_EQ(sys.recorder().record(a).dyn_grants, 1);
}

}  // namespace
}  // namespace dbs::batch
