// Full lifecycle of evolving jobs through scheduler + RMS + application.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig config(std::size_t nodes) {
  SystemConfig c;
  c.cluster.node_count = nodes;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

wl::Behavior evolving(std::int64_t set_seconds) {
  wl::Behavior b;
  b.static_runtime = Duration::seconds(set_seconds);
  b.evolving = true;
  b.ask_cores = 4;
  return b;
}

TEST(EvolvingEndToEnd, GrantAtSixteenPercent) {
  BatchSystem sys(config(2));
  const JobId id = sys.submit_now(test::spec("e", 8, Duration::seconds(1000)),
                                  apps::make_application(evolving(1000)));
  sys.run();
  const auto& r = sys.recorder().record(id);
  EXPECT_EQ(r.dyn_requests, 1);
  EXPECT_EQ(r.dyn_grants, 1);
  EXPECT_EQ(*r.end - *r.start, Duration::micros(666'666'667));
}

TEST(EvolvingEndToEnd, BothAttemptsFailOnFullMachine) {
  BatchSystem sys(config(1));
  const JobId id = sys.submit_now(test::spec("e", 8, Duration::seconds(1000)),
                                  apps::make_application(evolving(1000)));
  sys.run();
  const auto& r = sys.recorder().record(id);
  EXPECT_EQ(r.dyn_requests, 2);
  EXPECT_EQ(r.dyn_rejects, 2);
  EXPECT_EQ(r.dyn_grants, 0);
  EXPECT_EQ(*r.end - *r.start, Duration::seconds(1000));
}

TEST(EvolvingEndToEnd, RetrySucceedsAfterResourcesFree) {
  BatchSystem sys(config(2));
  // Blocker holds the second node across the 16% mark (160s) but ends
  // before the 25% retry (250s).
  sys.submit_now(test::spec("blocker", 8, Duration::seconds(1000), "bob"),
                 test::rigid(Duration::seconds(200)));
  const JobId id = sys.submit_now(test::spec("e", 8, Duration::seconds(1000)),
                                  apps::make_application(evolving(1000)));
  sys.run();
  const auto& r = sys.recorder().record(id);
  EXPECT_EQ(r.dyn_requests, 2);
  EXPECT_EQ(r.dyn_rejects, 1);
  EXPECT_EQ(r.dyn_grants, 1);
  // Grant at 250s under PaperDet: finish at SET*8/12 ~ 666.7s.
  EXPECT_EQ(*r.end - *r.start, Duration::micros(666'666'667));
}

TEST(EvolvingEndToEnd, FifoOrderAmongRequests) {
  // Two evolving jobs whose asks land in the same scheduling iteration but
  // only 4 idle cores exist: the first submitter wins.
  BatchSystem sys(config(3));  // 24 cores
  const JobId e1 = sys.submit_now(test::spec("e1", 10, Duration::seconds(1000)),
                                  apps::make_application(evolving(1000)));
  const JobId e2 =
      sys.submit_now(test::spec("e2", 10, Duration::seconds(1000), "bob"),
                     apps::make_application(evolving(1000)));
  sys.run();
  // 4 idle cores; both ask +4 at t=160. FIFO: e1 granted, e2 rejected at
  // 160, then its 250s retry also fails (e1 holds the cores).
  EXPECT_EQ(sys.recorder().record(e1).dyn_grants, 1);
  EXPECT_EQ(sys.recorder().record(e2).dyn_grants, 0);
  EXPECT_EQ(sys.recorder().record(e2).dyn_rejects, 2);
}

TEST(EvolvingEndToEnd, ExpandedCoresAreReleasedAtCompletion) {
  BatchSystem sys(config(2));
  const JobId e = sys.submit_now(test::spec("e", 8, Duration::seconds(1000)),
                                 apps::make_application(evolving(1000)));
  sys.submit_at(Time::from_seconds(300),
                test::spec("later", 16, Duration::seconds(500), "bob"),
                [] { return test::rigid(Duration::seconds(100)); });
  sys.run();
  const auto& r_e = sys.recorder().record(e);
  const auto& r_l = sys.recorder().record(JobId{1});
  // The 16-core job fits only after the evolving job (12 cores) finishes.
  EXPECT_EQ(*r_l.start, *r_e.end);
  EXPECT_EQ(sys.cluster().free_cores(), 16);
}

TEST(EvolvingEndToEnd, MultipleEvolversInterleave) {
  BatchSystem sys(config(4));  // 32 cores
  std::vector<JobId> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(sys.submit_now(
        test::spec("e" + std::to_string(i), 8, Duration::seconds(600),
                   "u" + std::to_string(i)),
        apps::make_application(evolving(600))));
  sys.run();
  // 8 idle cores serve two +4 asks; the third is rejected twice.
  int grants = 0, rejects = 0;
  for (const JobId id : ids) {
    grants += sys.recorder().record(id).dyn_grants;
    rejects += sys.recorder().record(id).dyn_rejects;
  }
  EXPECT_EQ(grants, 2);
  EXPECT_EQ(rejects, 2);
}

}  // namespace
}  // namespace dbs::batch
