// Node failures: the fault-tolerance use of dynamic allocation the paper's
// introduction motivates — affected jobs acquire spare nodes and continue.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/resilient.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig config(std::size_t nodes = 4) {
  SystemConfig c;
  c.cluster.node_count = nodes;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

TEST(FaultTolerance, RigidJobIsRequeuedAndRestarts) {
  BatchSystem sys(config());
  const JobId id = sys.submit_now(test::spec("r", 16, Duration::minutes(10)),
                                  test::rigid(Duration::minutes(5)));
  sys.simulator().schedule_at(Time::from_seconds(60), [&] {
    // Fail one of the job's nodes (node 0 holds 8 of its cores with Pack).
    sys.server().node_failure(NodeId{0});
  });
  sys.run();
  const auto& r = sys.recorder().record(id);
  EXPECT_EQ(r.requeues, 1);
  ASSERT_TRUE(r.completed());
  // The restart ran the full five minutes again on the remaining 3 nodes.
  EXPECT_GE(*r.end, Time::from_seconds(60) + Duration::minutes(5));
}

TEST(FaultTolerance, ResilientJobSurvivesAndReacquires) {
  BatchSystem sys(config());
  auto app = std::make_unique<apps::ResilientApp>(Duration::minutes(10));
  const apps::ResilientApp* papp = app.get();
  const JobId id = sys.submit_now(test::spec("ft", 16, Duration::minutes(30)),
                                  std::move(app));
  sys.simulator().schedule_at(Time::from_seconds(60), [&] {
    sys.server().node_failure(NodeId{0});
  });
  sys.run();
  const auto& r = sys.recorder().record(id);
  EXPECT_EQ(r.requeues, 0);
  EXPECT_EQ(papp->losses_survived(), 1);
  // The spare-node request succeeded (2 idle nodes available).
  EXPECT_EQ(r.dyn_grants, 1);
  ASSERT_TRUE(r.completed());
  // With an immediate replacement the total runtime stays close to 10 min
  // (only the notification/allocation gap is lost).
  EXPECT_LT(*r.end - *r.start, Duration::minutes(11));
  EXPECT_GE(*r.end - *r.start, Duration::minutes(10));
}

TEST(FaultTolerance, ResilientJobShrinksWhenNoSparesExist) {
  BatchSystem sys(config(2));  // 16 cores, no spares
  auto app = std::make_unique<apps::ResilientApp>(Duration::minutes(10));
  const JobId id = sys.submit_now(test::spec("ft", 16, Duration::minutes(40)),
                                  std::move(app));
  sys.simulator().schedule_at(Time::from_seconds(60), [&] {
    sys.server().node_failure(NodeId{0});
  });
  sys.run();
  const auto& r = sys.recorder().record(id);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.dyn_grants, 0);
  EXPECT_EQ(r.dyn_rejects, 1);
  // 1 min at 16 cores + remaining 9x16 core-minutes on 8 cores = 19 min.
  EXPECT_NEAR((*r.end - *r.start).as_minutes(), 19.0, 0.2);
}

TEST(FaultTolerance, JobLosingAllCoresIsRequeued) {
  BatchSystem sys(config(2));
  // A one-node resilient job fails with its node: nothing left to survive
  // on, so it restarts elsewhere.
  auto app = std::make_unique<apps::ResilientApp>(Duration::minutes(5));
  const JobId id = sys.submit_now(test::spec("ft", 8, Duration::minutes(30)),
                                  std::move(app));
  sys.simulator().schedule_at(Time::from_seconds(30), [&] {
    // Pack policy put the job on node 0.
    const auto& placement =
        sys.server().job(id).placement();
    sys.server().node_failure(placement.shares.front().node);
  });
  sys.run();
  const auto& r = sys.recorder().record(id);
  EXPECT_EQ(r.requeues, 1);
  ASSERT_TRUE(r.completed());
}

TEST(FaultTolerance, DownNodeIsAvoidedUntilRestored) {
  BatchSystem sys(config(2));
  sys.server().node_failure(NodeId{0});
  const JobId big = sys.submit_now(test::spec("big", 16, Duration::minutes(5)),
                                   test::rigid(Duration::minutes(5)));
  sys.simulator().schedule_at(Time::from_seconds(120), [&] {
    sys.server().restore_node(NodeId{0});
  });
  sys.run();
  const auto& r = sys.recorder().record(big);
  ASSERT_TRUE(r.completed());
  // The 16-core job could only start after the node was restored.
  EXPECT_GE(*r.start, Time::from_seconds(120));
}

TEST(FaultTolerance, SchedulerKeepsQueueMovingAroundFailure) {
  BatchSystem sys(config(4));
  for (int i = 0; i < 8; ++i)
    sys.submit_at(Time::from_seconds(i * 10),
                  test::spec("j" + std::to_string(i), 8, Duration::minutes(5),
                             "u" + std::to_string(i % 3)),
                  [] { return test::rigid(Duration::minutes(3)); });
  sys.simulator().schedule_at(Time::from_seconds(45), [&] {
    sys.server().node_failure(NodeId{1});
  });
  sys.run();
  for (const auto& r : sys.recorder().records())
    EXPECT_TRUE(r.completed()) << r.name;
  EXPECT_EQ(sys.cluster().used_cores(), 0);
}

}  // namespace
}  // namespace dbs::batch
