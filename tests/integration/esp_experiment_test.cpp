// The headline reproduction: the Table II orderings of the paper's
// evaluation must hold on the dynamic ESP workload.
#include "batch/esp_experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dbs::batch {
namespace {

const std::vector<RunResult>& results() {
  static const std::vector<RunResult> r = run_esp_all(EspExperimentParams{});
  return r;
}

const RunResult& get(EspConfig c) {
  return results()[static_cast<std::size_t>(c)];
}

TEST(EspExperiment, AllJobsComplete) {
  for (const RunResult& r : results()) {
    EXPECT_EQ(r.summary.jobs_submitted, 230u) << r.label;
    EXPECT_EQ(r.summary.jobs_completed, 230u) << r.label;
  }
}

TEST(EspExperiment, StaticHasNoDynamicActivity) {
  EXPECT_EQ(get(EspConfig::Static).summary.evolving_jobs, 0u);
  EXPECT_EQ(get(EspConfig::Static).summary.satisfied_dyn_jobs, 0u);
}

TEST(EspExperiment, DynamicConfigsHave69EvolvingJobs) {
  for (const EspConfig c :
       {EspConfig::DynHP, EspConfig::Dyn500, EspConfig::Dyn600})
    EXPECT_EQ(get(c).summary.evolving_jobs, 69u) << to_string(c);
}

TEST(EspExperiment, SatisfiedOrderingMatchesPaper) {
  // Paper: 43 (HP) > 27 (600) > 20 (500) > 0 (static). At the request
  // level (granted dynamic requests) our reproduction preserves that
  // ordering exactly.
  const auto& hp = get(EspConfig::DynHP).summary;
  const auto& d600 = get(EspConfig::Dyn600).summary;
  const auto& d500 = get(EspConfig::Dyn500).summary;
  EXPECT_GT(hp.granted_dyn_requests, d600.granted_dyn_requests);
  EXPECT_GT(d600.granted_dyn_requests, d500.granted_dyn_requests);
  EXPECT_GT(d500.granted_dyn_requests, 0u);

  // Job-level "satisfied" counts every request granted (a single final
  // rejection disqualifies). Dyn-HP remains strictly best and both
  // restrictive configs satisfy some jobs; between Dyn-600 and Dyn-500 the
  // strict per-job ordering is not resolved by our reproduction (under
  // Dyn-600 the extra grants spread over more jobs that also take one
  // rejection), so only the weaker relations are asserted.
  EXPECT_GT(hp.satisfied_dyn_jobs, d600.satisfied_dyn_jobs);
  EXPECT_GT(hp.satisfied_dyn_jobs, d500.satisfied_dyn_jobs);
  EXPECT_GT(d600.satisfied_dyn_jobs, 0u);
  EXPECT_GT(d500.satisfied_dyn_jobs, 0u);
  // Magnitude sanity: HP fully satisfies a large share of the 69 evolving
  // jobs, but strict counting keeps it below the request-level figure.
  EXPECT_GE(hp.satisfied_dyn_jobs, 20u);
  EXPECT_LE(hp.satisfied_dyn_jobs, 60u);
  EXPECT_LE(hp.satisfied_dyn_jobs, hp.granted_dyn_requests);
}

TEST(EspExperiment, MakespanOrderingMatchesPaper) {
  // Paper: Static 265.78 > Dyn-500 248.85 > Dyn-600 241.06 > Dyn-HP 238.78.
  const Duration stat = get(EspConfig::Static).summary.makespan;
  const Duration hp = get(EspConfig::DynHP).summary.makespan;
  const Duration d500 = get(EspConfig::Dyn500).summary.makespan;
  const Duration d600 = get(EspConfig::Dyn600).summary.makespan;
  EXPECT_GT(stat, d500);
  EXPECT_GT(d500, d600);
  EXPECT_GT(d600, hp);
}

TEST(EspExperiment, UtilizationAndThroughputImproveWithDynamics) {
  const auto& stat = get(EspConfig::Static).summary;
  const auto& hp = get(EspConfig::DynHP).summary;
  EXPECT_GT(hp.utilization, stat.utilization);
  EXPECT_GT(hp.throughput_jobs_per_min, stat.throughput_jobs_per_min);
  // Utilization in a plausible band (paper: 77-85%).
  EXPECT_GT(stat.utilization, 60.0);
  EXPECT_LT(hp.utilization, 95.0);
}

TEST(EspExperiment, BackfillOrderingMatchesPaper) {
  // Paper §IV-B: "Dynamic-HP backfills the greatest number of jobs,
  // followed by the Dynamic-600 and Dynamic-500 configurations."
  EXPECT_GT(get(EspConfig::DynHP).summary.backfilled_jobs,
            get(EspConfig::Dyn600).summary.backfilled_jobs);
  EXPECT_GE(get(EspConfig::Dyn600).summary.backfilled_jobs,
            get(EspConfig::Dyn500).summary.backfilled_jobs);
}

TEST(EspExperiment, FairnessFlattensTypeLWaits) {
  // Paper Figs. 9/10: under the restrictive fairness policy the waiting
  // times stay close to the static scenario, while Dyn-HP perturbs them
  // heavily. Compare the mean absolute deviation of type-L waits from the
  // static run.
  const auto static_waits = get(EspConfig::Static).waits_of_type("L");
  const auto deviation = [&](const RunResult& r) {
    const auto waits = r.waits_of_type("L");
    double sum = 0.0;
    for (std::size_t i = 0; i < waits.size(); ++i)
      sum += std::abs(
          (waits[i].wait - static_waits[i].wait).as_seconds());
    return sum / static_cast<double>(waits.size());
  };
  EXPECT_LT(deviation(get(EspConfig::Dyn500)),
            0.5 * deviation(get(EspConfig::DynHP)));
}

TEST(EspExperiment, ZJobsDrainTheQueue) {
  for (const RunResult& r : results()) {
    const auto& jobs = r.jobs;
    const auto& z1 = jobs[228];
    const auto& z2 = jobs[229];
    ASSERT_TRUE(z1.completed() && z2.completed()) << r.label;
    // Drain: while a Z job is queued no other job starts. So no non-Z job
    // starts between Z1's submission and Z1's start...
    for (std::size_t i = 0; i < 228; ++i) {
      EXPECT_FALSE(*jobs[i].start > z1.submit && *jobs[i].start < *z1.start)
          << r.label << " job " << i << " started during Z1 drain";
      // ...nor between Z1's start (Z2 still queued) and Z2's start.
      EXPECT_FALSE(*jobs[i].start > *z1.start && *jobs[i].start < *z2.start)
          << r.label << " job " << i << " started during Z2 drain";
    }
    // Z jobs own the whole machine, so they run strictly one after another.
    EXPECT_GE(*z2.start, *z1.end) << r.label;
  }
}

TEST(EspExperiment, PapersActual15NodeMachineAlsoWorks) {
  // The paper ran on 15 nodes x 8 = 120 cores (ESP fractions rounded to
  // the nearest core). The whole pipeline must hold up there too.
  EspExperimentParams params;
  params.workload.total_cores = 120;
  const RunResult stat = run_esp(params, EspConfig::Static);
  const RunResult hp = run_esp(params, EspConfig::DynHP);
  EXPECT_EQ(stat.summary.jobs_completed, 230u);
  EXPECT_EQ(hp.summary.jobs_completed, 230u);
  EXPECT_GT(hp.summary.satisfied_dyn_jobs, 20u);
  EXPECT_LT(hp.summary.makespan, stat.summary.makespan);
  EXPECT_GT(hp.summary.utilization, stat.summary.utilization);
}

TEST(EspExperiment, DeterministicAcrossRuns) {
  const RunResult again = run_esp(EspExperimentParams{}, EspConfig::Dyn600);
  EXPECT_EQ(again.summary.makespan, get(EspConfig::Dyn600).summary.makespan);
  EXPECT_EQ(again.summary.satisfied_dyn_jobs,
            get(EspConfig::Dyn600).summary.satisfied_dyn_jobs);
  EXPECT_EQ(again.events, get(EspConfig::Dyn600).events);
}

}  // namespace
}  // namespace dbs::batch
