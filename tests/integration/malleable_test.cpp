// Malleable jobs (§VI future work): scheduler-initiated shrinking serves
// dynamic requests without losing any progress.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "apps/resilient.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig config(bool steal) {
  SystemConfig c;
  c.cluster.node_count = 2;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.allow_malleable_steal = steal;
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

TEST(MalleableIntegration, StealServesDynamicRequest) {
  BatchSystem sys(config(true));
  // The evolver (8 cores) asks +4 at t=60 on a full machine.
  auto evolver_app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 4, 0, 1.0, Duration::zero()}});
  const JobId evolver = sys.submit_now(
      test::spec("evo", 8, Duration::minutes(12)), std::move(evolver_app));
  // The malleable neighbour (8 cores, may shrink to 2) adapts.
  rms::JobSpec malleable = test::spec("mall", 8, Duration::hours(2), "bob");
  malleable.malleable_min = 2;
  const JobId victim = sys.submit_now(
      malleable, std::make_unique<apps::ResilientApp>(Duration::minutes(10)));
  sys.run();

  EXPECT_EQ(sys.recorder().record(evolver).dyn_grants, 1);
  const auto& victim_rec = sys.recorder().record(victim);
  EXPECT_EQ(victim_rec.malleable_shrinks, 1);
  EXPECT_EQ(victim_rec.requeues, 0);  // no progress lost
  ASSERT_TRUE(victim_rec.completed());
  // The victim carried 10x8=80 core-minutes of work: 1 min at 8 cores,
  // then shrunk by the 4 needed cores -> 72 core-min at 4 cores = 18 min.
  EXPECT_NEAR((*victim_rec.end - *victim_rec.start).as_minutes(), 19.0, 0.2);
}

TEST(MalleableIntegration, DisabledMeansRejection) {
  BatchSystem sys(config(false));
  auto evolver_app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 8, 0, 1.0, Duration::zero()}});
  const JobId evolver = sys.submit_now(
      test::spec("evo", 8, Duration::minutes(12)), std::move(evolver_app));
  rms::JobSpec malleable = test::spec("mall", 8, Duration::hours(2), "bob");
  malleable.malleable_min = 2;
  sys.submit_now(malleable,
                 std::make_unique<apps::ResilientApp>(Duration::minutes(10)));
  sys.run();
  EXPECT_EQ(sys.recorder().record(evolver).dyn_grants, 0);
}

TEST(MalleableIntegration, NeverShrinksBelowMinimum) {
  BatchSystem sys(config(true));
  auto evolver_app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 8, 0, 1.0, Duration::zero()}});
  const JobId evolver = sys.submit_now(
      test::spec("evo", 8, Duration::minutes(12)), std::move(evolver_app));
  // Only 4 cores of slack exist: the +8 request cannot be served.
  rms::JobSpec malleable = test::spec("mall", 8, Duration::hours(2), "bob");
  malleable.malleable_min = 4;
  const JobId victim = sys.submit_now(
      malleable, std::make_unique<apps::ResilientApp>(Duration::minutes(10)));
  sys.run();
  EXPECT_EQ(sys.recorder().record(evolver).dyn_grants, 0);
  EXPECT_EQ(sys.recorder().record(victim).malleable_shrinks, 0);
}

TEST(MalleableIntegration, ServerValidatesShrink) {
  BatchSystem sys(config(true));
  const JobId rigid = sys.submit_now(test::spec("r", 8, Duration::minutes(10)),
                                     test::rigid(Duration::minutes(5)));
  sys.run_until(Time::from_seconds(5));
  EXPECT_THROW(sys.server().shrink_job(rigid, 2), precondition_error);
}

}  // namespace
}  // namespace dbs::batch
