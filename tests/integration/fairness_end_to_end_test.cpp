// DFS policies steering real scheduling decisions end to end.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig base_config() {
  SystemConfig c;
  c.cluster.node_count = 4;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.reservation_depth = 5;
  c.scheduler.reservation_delay_depth = 5;
  return c;
}

/// Evolving job (16 cores, asks +8 at 2 min into a 20-min walltime) plus a
/// queued 24-core victim owned by `victim_user`.
struct Scenario {
  std::unique_ptr<BatchSystem> sys;
  JobId evolver, victim;
};

Scenario build(SystemConfig cfg, const std::string& victim_user = "victim") {
  Scenario s;
  s.sys = std::make_unique<BatchSystem>(cfg);
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(20),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), /*grow=*/8, 0, 1.0, Duration::zero()}});
  s.evolver = s.sys->submit_now(test::spec("evo", 16, Duration::minutes(20)),
                                std::move(app));
  s.victim = s.sys->submit_now(
      test::spec("victim", 24, Duration::minutes(5), victim_user),
      test::rigid(Duration::minutes(5)));
  return s;
}

TEST(FairnessEndToEnd, TargetDelayWithinBudgetAllows) {
  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  // The grab delays the victim from t=20min (evolver walltime end)... the
  // victim waits for the evolver either way; it needs 24 of 32 cores, so
  // the +8 grab pushes it from t=20 (16 free is not enough anyway!) —
  // actually with 16 free it cannot start; its baseline start is already
  // the walltime end. The grab causes zero *additional* delay: allowed.
  cfg.scheduler.dfs.defaults.target_delay = Duration::seconds(1);
  Scenario s = build(cfg);
  s.sys->run();
  EXPECT_EQ(s.sys->recorder().record(s.evolver).dyn_grants, 1);
}

/// Blocker (8 cores, 5 min) + evolver (16 cores, walltime 20 min, asks +8
/// at 2 min) + victim (16 cores, queued at 1 min, reserved at the blocker's
/// end). The grab would push the victim from t=5min to the evolver's
/// walltime end at t=20min: a 15-minute delay.
Scenario build_delayed_victim(SystemConfig cfg) {
  Scenario s;
  s.sys = std::make_unique<BatchSystem>(cfg);
  s.sys->submit_now(test::spec("blocker", 8, Duration::minutes(5), "bob"),
                    test::rigid(Duration::minutes(5)));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(20),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(2), 8, 0, 1.0, Duration::zero()}});
  s.evolver = s.sys->submit_now(test::spec("evo", 16, Duration::minutes(20)),
                                std::move(app));
  s.victim = JobId{2};
  s.sys->submit_at(Time::epoch() + Duration::minutes(1),
                   test::spec("victim", 16, Duration::minutes(10), "victim"),
                   [] { return test::rigid(Duration::minutes(10)); });
  return s;
}

TEST(FairnessEndToEnd, TargetDelayBudgetExhaustedDenies) {
  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::minutes(10);
  cfg.scheduler.dfs.interval = Duration::hours(1);
  Scenario s = build_delayed_victim(cfg);
  s.sys->run();
  // 15-minute delay > 10-minute budget.
  EXPECT_EQ(s.sys->recorder().record(s.evolver).dyn_grants, 0);
}

TEST(FairnessEndToEnd, TargetDelayGenerousBudgetAllows) {
  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::minutes(20);
  Scenario s = build_delayed_victim(cfg);
  s.sys->run();
  EXPECT_EQ(s.sys->recorder().record(s.evolver).dyn_grants, 1);
  // And the victim really was delayed to the evolver's completion.
  EXPECT_GE(*s.sys->recorder().record(JobId{2}).start,
            Time::epoch() + Duration::minutes(5));
}

TEST(FairnessEndToEnd, ChargedDelaysAccumulateWithinInterval) {
  // Budget 25 min per interval. The first evolver's grab charges a 15-min
  // delay to user "victim"; a second, identical grab (another 15 min to the
  // same user in the same interval) must then be denied.
  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::minutes(25);
  cfg.scheduler.dfs.interval = Duration::hours(2);
  Scenario s = build_delayed_victim(cfg);
  s.sys->run();
  // The grab is admitted and its 15-minute delay charged to "victim".
  EXPECT_EQ(s.sys->recorder().record(s.evolver).dyn_grants, 1);
  EXPECT_EQ(s.sys->scheduler().dfs().accumulated(core::DfsEntityKind::User,
                                                 "victim"),
            Duration::minutes(15));
  const auto& victim = s.sys->recorder().record(JobId{2});
  EXPECT_GE(*victim.start, Time::epoch() + Duration::minutes(5));
}

TEST(FairnessEndToEnd, SingleAndTargetCombinedMostRestrictiveWins) {
  SystemConfig cfg = base_config();
  cfg.scheduler.dfs.policy = core::DfsPolicy::SingleAndTargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::hours(10);  // generous
  cfg.scheduler.dfs.defaults.single_delay = Duration::seconds(30);  // strict
  Scenario s = build_delayed_victim(cfg);
  s.sys->run();
  EXPECT_EQ(s.sys->recorder().record(s.evolver).dyn_grants, 0);
}

}  // namespace
}  // namespace dbs::batch
