// The negotiation extension end to end: a timed-out request stays queued and
// is granted as soon as resources appear within the timeout.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {
namespace {

SystemConfig config() {
  SystemConfig c;
  c.cluster.node_count = 2;
  c.cluster.cores_per_node = 8;
  c.latency = rms::LatencyModel::zero();
  c.scheduler.poll_interval = Duration::seconds(10);
  return c;
}

TEST(Negotiation, RequestGrantedWhenResourcesAppearWithinTimeout) {
  BatchSystem sys(config());
  // The whole second node is busy until t=300; the evolving job asks at
  // t=60 with a 5-minute negotiation timeout.
  sys.submit_now(test::spec("blocker", 8, Duration::minutes(10), "bob"),
                 test::rigid(Duration::seconds(300)));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), /*grow=*/8, 0, 1.0, Duration::minutes(5)}});
  const apps::ScriptedApp* papp = app.get();
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(12)),
                                   std::move(app));
  sys.run();
  EXPECT_EQ(papp->grants(), 1);
  EXPECT_EQ(papp->rejects(), 0);
  const auto& r = sys.recorder().record(evo);
  EXPECT_EQ(r.dyn_grants, 1);
  EXPECT_EQ(r.dyn_rejects, 0);
}

TEST(Negotiation, RequestFinallyRejectedAfterTimeout) {
  BatchSystem sys(config());
  sys.submit_now(test::spec("blocker", 8, Duration::minutes(20), "bob"),
                 test::rigid(Duration::minutes(20)));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 8, 0, 1.0, Duration::minutes(2)}});
  const apps::ScriptedApp* papp = app.get();
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(12)),
                                   std::move(app));
  sys.run();
  EXPECT_EQ(papp->grants(), 0);
  EXPECT_EQ(papp->rejects(), 1);
  EXPECT_EQ(sys.recorder().record(evo).dyn_rejects, 1);
}

TEST(Negotiation, WithoutTimeoutRejectionIsImmediate) {
  BatchSystem sys(config());
  sys.submit_now(test::spec("blocker", 8, Duration::minutes(20), "bob"),
                 test::rigid(Duration::minutes(20)));
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 8, 0, 1.0, Duration::zero()}});
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(12)),
                                   std::move(app));
  sys.run();
  const auto& r = sys.recorder().record(evo);
  EXPECT_EQ(r.dyn_rejects, 1);
  // The job went back to Running right away and completed at its base time.
  EXPECT_EQ(*r.end - *r.start, Duration::minutes(10));
}

}  // namespace
}  // namespace dbs::batch
