// Fig. 7 reproduction: the Quadflow case study shapes.
#include "batch/quadflow_experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dbs::batch {
namespace {

TEST(QuadflowExperiment, FlatPlateSavingNearPaper) {
  const QuadflowFigure fig = quadflow_figure(amr::flat_plate_case());
  // Paper: the dynamic run was 17% faster than static-16 (saving ~3h).
  EXPECT_NEAR(fig.saving_percent, 17.0, 3.0);
  const double saved_hours = (fig.static_small.total().as_seconds() -
                              fig.dynamic.total().as_seconds()) / 3600.0;
  EXPECT_NEAR(saved_hours, 3.0, 1.0);
}

TEST(QuadflowExperiment, CylinderSavingNearPaper) {
  const QuadflowFigure fig = quadflow_figure(amr::cylinder_case());
  // Paper: 33% faster, saving ~10 hours.
  EXPECT_NEAR(fig.saving_percent, 33.0, 4.0);
  const double saved_hours = (fig.static_small.total().as_seconds() -
                              fig.dynamic.total().as_seconds()) / 3600.0;
  EXPECT_NEAR(saved_hours, 10.0, 2.0);
}

TEST(QuadflowExperiment, FlatPlatePrefixIdenticalFor16And32) {
  // Paper: "the time taken until the final grid adaptation level is
  // identical when executed with 16 or 32 cores".
  const QuadflowFigure fig = quadflow_figure(amr::flat_plate_case());
  const auto& s16 = fig.static_small.phase_durations;
  const auto& s32 = fig.static_large.phase_durations;
  ASSERT_EQ(s16.size(), 3u);
  EXPECT_EQ(s16[0], s32[0]);
  EXPECT_EQ(s16[1], s32[1]);
  EXPECT_LT(s32[2], s16[2]);
}

TEST(QuadflowExperiment, DynamicMatchesStaticUntilExpansion) {
  for (const auto& c : {amr::flat_plate_case(), amr::cylinder_case()}) {
    const QuadflowFigure fig = quadflow_figure(c);
    ASSERT_TRUE(fig.dynamic.expand_phase.has_value()) << c.name;
    EXPECT_EQ(*fig.dynamic.expand_phase, c.cells_per_phase.size() - 1)
        << c.name;  // the final adaptation triggers the request
    for (std::size_t p = 0; p < *fig.dynamic.expand_phase; ++p)
      EXPECT_EQ(fig.dynamic.phase_durations[p],
                fig.static_small.phase_durations[p])
          << c.name << " phase " << p;
  }
}

TEST(QuadflowExperiment, BatchRunMatchesAnalyticModel) {
  // Small case through the full batch system: turnaround equals the model
  // total up to protocol latencies.
  const amr::QuadflowCase c = amr::cylinder_case_small();
  const QuadflowFigure fig = quadflow_figure(c);
  const Duration turnaround = quadflow_batch_turnaround(c, 16, 16, 6, 8);
  const double diff = std::abs(turnaround.as_seconds() -
                               fig.dynamic.total().as_seconds());
  EXPECT_LT(diff, 1.0);
}

TEST(QuadflowExperiment, NoExpansionWhenClusterFull) {
  // Cluster exactly 2 nodes = 16 cores: the dynamic request cannot be
  // served and the run degenerates to static-16.
  const amr::QuadflowCase c = amr::flat_plate_case_small();
  const Duration turnaround = quadflow_batch_turnaround(c, 16, 16, 2, 8);
  const Duration static_total = apps::quadflow_static(c, 16).total();
  EXPECT_NEAR(turnaround.as_seconds(), static_total.as_seconds(), 1.0);
}

}  // namespace
}  // namespace dbs::batch
