// Every simulation must be exactly reproducible: same seed, same events,
// same timings, bit-identical metrics.
#include <gtest/gtest.h>

#include "batch/experiment.hpp"
#include "workload/synthetic.hpp"

namespace dbs::batch {
namespace {

SystemConfig config() {
  SystemConfig c;
  c.cluster.node_count = 8;
  c.cluster.cores_per_node = 8;
  c.scheduler.reservation_depth = 3;
  c.scheduler.reservation_delay_depth = 5;
  c.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  c.scheduler.dfs.defaults.target_delay = Duration::seconds(600);
  return c;
}

TEST(Determinism, IdenticalRunsBitForBit) {
  wl::SyntheticParams p;
  p.job_count = 150;
  p.total_cores = 64;
  p.evolving_fraction = 0.4;
  p.seed = 7;
  const wl::Workload workload = generate_synthetic(p);

  const RunResult a = run_workload(config(), workload, "a");
  const RunResult b = run_workload(config(), workload, "b");

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.scheduler_iterations, b.scheduler_iterations);
  EXPECT_EQ(a.summary.makespan, b.summary.makespan);
  EXPECT_EQ(a.summary.satisfied_dyn_jobs, b.summary.satisfied_dyn_jobs);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start) << i;
    EXPECT_EQ(a.jobs[i].end, b.jobs[i].end) << i;
    EXPECT_EQ(a.jobs[i].dyn_grants, b.jobs[i].dyn_grants) << i;
    EXPECT_EQ(a.jobs[i].backfilled, b.jobs[i].backfilled) << i;
  }
}

TEST(Determinism, SeedChangesOutcome) {
  wl::SyntheticParams p;
  p.job_count = 150;
  p.total_cores = 64;
  p.evolving_fraction = 0.4;
  p.seed = 7;
  const RunResult a = run_workload(config(), generate_synthetic(p), "a");
  p.seed = 8;
  const RunResult b = run_workload(config(), generate_synthetic(p), "b");
  EXPECT_NE(a.summary.makespan, b.summary.makespan);
}

}  // namespace
}  // namespace dbs::batch
