#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "batch/batch_system.hpp"

namespace dbs::metrics {
namespace {

batch::SystemConfig config() {
  batch::SystemConfig c;
  c.cluster.node_count = 2;
  c.cluster.cores_per_node = 8;
  return c;
}

TEST(Report, SummaryOfSimpleWorkload) {
  batch::BatchSystem sys(config());
  // Two sequential full-machine jobs of 5 minutes each.
  sys.submit_now(test::spec("a", 16, Duration::minutes(6)),
                 test::rigid(Duration::minutes(5)));
  sys.submit_now(test::spec("b", 16, Duration::minutes(6), "bob"),
                 test::rigid(Duration::minutes(5)));
  sys.run();
  const WorkloadSummary s = summarize(sys.recorder());
  EXPECT_EQ(s.jobs_submitted, 2u);
  EXPECT_EQ(s.jobs_completed, 2u);
  EXPECT_EQ(s.evolving_jobs, 0u);
  EXPECT_NEAR(s.makespan.as_minutes(), 10.0, 0.1);
  EXPECT_NEAR(s.utilization, 100.0, 1.0);
  EXPECT_NEAR(s.throughput_jobs_per_min, 0.2, 0.01);
  EXPECT_NEAR(s.avg_wait.as_minutes(), 2.5, 0.1);  // (0 + 5) / 2
  EXPECT_NEAR(s.max_wait.as_minutes(), 5.0, 0.1);
  EXPECT_NEAR(s.avg_turnaround.as_minutes(), 7.5, 0.1);
}

TEST(Report, EmptyRecorder) {
  batch::BatchSystem sys(config());
  const WorkloadSummary s = summarize(sys.recorder());
  EXPECT_EQ(s.jobs_submitted, 0u);
  EXPECT_EQ(s.jobs_completed, 0u);
  EXPECT_DOUBLE_EQ(s.utilization, 0.0);
}

TEST(Report, WaitSeriesFiltersByType) {
  batch::BatchSystem sys(config());
  rms::JobSpec a = test::spec("L-01", 8, Duration::minutes(5));
  a.type_tag = "L";
  rms::JobSpec b = test::spec("A-01", 8, Duration::minutes(5));
  b.type_tag = "A";
  sys.submit_now(a, test::rigid(Duration::minutes(1)));
  sys.submit_now(b, test::rigid(Duration::minutes(1)));
  sys.run();
  EXPECT_EQ(wait_series(sys.recorder()).size(), 2u);
  const auto only_l = wait_series(sys.recorder(), "L");
  ASSERT_EQ(only_l.size(), 1u);
  EXPECT_EQ(only_l[0].name, "L-01");
  EXPECT_EQ(only_l[0].submit_index, 0u);
}

TEST(Report, PerformanceRowFormatsTableTwo) {
  WorkloadSummary s;
  s.makespan = Duration::minutes(265) + Duration::seconds(47);
  s.satisfied_dyn_jobs = 43;
  s.utilization = 85.02;
  s.throughput_jobs_per_min = 0.96;
  s.jobs_completed = 230;
  const auto row = performance_row("Dyn-HP", s, 0.86);
  ASSERT_EQ(row.size(), performance_header().size());
  EXPECT_EQ(row[0], "Dyn-HP");
  EXPECT_EQ(row[2], "43");
  EXPECT_EQ(row[3], "85.02");
  EXPECT_EQ(row[5], "11.6");  // (0.96-0.86)/0.86
  const auto baseline_row = performance_row("Static", s, 0.0);
  EXPECT_EQ(baseline_row[5], "-");
}

}  // namespace
}  // namespace dbs::metrics
