#include "metrics/recorder.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "apps/app_model.hpp"
#include "common/assert.hpp"

namespace dbs::metrics {
namespace {

using test::BareSystem;

TEST(Recorder, JobLifecycleRecorded) {
  BareSystem s;
  Recorder rec(s.sim, s.cluster);
  s.server.add_observer(&rec);
  const JobId id = s.server.submit(test::spec("a", 8, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, true));
  s.sim.run();
  const JobRecord& r = rec.record(id);
  EXPECT_EQ(r.name, "a");
  EXPECT_EQ(r.user, "alice");
  EXPECT_EQ(r.cores_requested, 8);
  EXPECT_EQ(r.cores_peak, 8);
  EXPECT_TRUE(r.backfilled);
  ASSERT_TRUE(r.completed());
  EXPECT_LT(r.wait_time(), Duration::seconds(1));
  EXPECT_GE(r.turnaround(), Duration::minutes(5));
}

TEST(Recorder, DynEventsCounted) {
  BareSystem s;
  Recorder rec(s.sim, s.cluster);
  s.server.add_observer(&rec);
  auto app = std::make_unique<apps::ScriptedApp>(
      Duration::minutes(10),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::minutes(1), 4, 0, 1.0, Duration::zero()}});
  const JobId id = s.server.submit(test::spec("e", 4, Duration::minutes(20)),
                                   std::move(app));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run_until(Time::from_seconds(90));
  ASSERT_TRUE(s.server.grant_dyn(s.server.jobs().dyn_requests().front().id));
  s.sim.run();
  const JobRecord& r = rec.record(id);
  EXPECT_TRUE(r.evolving);
  EXPECT_EQ(r.dyn_requests, 1);
  EXPECT_EQ(r.dyn_grants, 1);
  EXPECT_TRUE(r.dyn_satisfied());
  EXPECT_EQ(r.cores_peak, 8);
}

// Table II "satisfied" = all dynamic requests granted. A record with both a
// grant and a rejection used to count as satisfied (the old predicate only
// looked at dyn_grants > 0); it must not.
TEST(Recorder, DynSatisfiedRequiresNoRejects) {
  JobRecord r;
  EXPECT_FALSE(r.dyn_satisfied());  // never asked
  r.dyn_requests = 1;
  r.dyn_grants = 1;
  EXPECT_TRUE(r.dyn_satisfied());
  r.dyn_requests = 2;
  r.dyn_rejects = 1;
  EXPECT_FALSE(r.dyn_satisfied());
  // Rejected-only evolving jobs are unsatisfied, not uncounted.
  r.dyn_grants = 0;
  EXPECT_FALSE(r.dyn_satisfied());
}

TEST(Recorder, UsageSeriesTracksAllocation) {
  BareSystem s;
  Recorder rec(s.sim, s.cluster);
  s.server.add_observer(&rec);
  const JobId id = s.server.submit(test::spec("a", 8, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run();
  const auto& series = rec.usage_series();
  ASSERT_GE(series.size(), 2u);
  EXPECT_EQ(series.front().second, 8);
  EXPECT_EQ(series.back().second, 0);
}

TEST(Recorder, UsedCoreSecondsIntegratesSteps) {
  BareSystem s;
  Recorder rec(s.sim, s.cluster);
  s.server.add_observer(&rec);
  const JobId id = s.server.submit(test::spec("a", 8, Duration::minutes(10)),
                                   test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, false));
  s.sim.run();
  // 8 cores for ~300s = ~2400 core-seconds.
  const double used =
      rec.used_core_seconds(rec.first_submit(), rec.last_finish());
  EXPECT_NEAR(used, 2400.0, 10.0);
}

TEST(Recorder, RequeueResetsStart) {
  BareSystem s;
  Recorder rec(s.sim, s.cluster);
  s.server.add_observer(&rec);
  rms::JobSpec spec = test::spec("p", 4, Duration::minutes(10));
  spec.preemptible = true;
  const JobId id = s.server.submit(spec, test::rigid(Duration::minutes(5)));
  ASSERT_TRUE(s.server.start_job(id, true));
  s.sim.run_until(Time::from_seconds(10));
  s.server.preempt(id);
  EXPECT_EQ(rec.record(id).requeues, 1);
  EXPECT_FALSE(rec.record(id).start.has_value());
}

TEST(Recorder, UnknownJobRejected) {
  BareSystem s;
  Recorder rec(s.sim, s.cluster);
  EXPECT_THROW((void)rec.record(JobId{7}), precondition_error);
}

}  // namespace
}  // namespace dbs::metrics
