// Time-series folding over hand-built flight-recorder files: utilization
// and queue-depth integrals, per-user usage and cumulative-delay curves,
// bucket boundaries and the JSON/CSV exports.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "metrics/timeseries.hpp"
#include "obs/recorder/reader.hpp"
#include "obs/recorder/writer.hpp"

namespace dbs::metrics {
namespace {

using obs::rec::PackedRecord;
using obs::rec::RecordReader;
using obs::rec::RecordType;
using obs::rec::RecordWriter;

constexpr std::int64_t kSecond = 1'000'000;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "timeseries_" + name + ".dbsr";
}

class Builder {
 public:
  explicit Builder(const std::string& path, std::int64_t capacity)
      : path_(path) {
    EXPECT_TRUE(writer_.open(path, capacity, 60 * kSecond));
  }

  void submit(std::int64_t t_us, std::uint32_t job, std::int32_t cores,
              const std::string& user) {
    PackedRecord r = base(t_us, RecordType::Submit, job, cores);
    r.user = writer_.intern(user);
    writer_.append(r);
  }
  void start(std::int64_t t_us, std::uint32_t job, std::int32_t cores) {
    writer_.append(base(t_us, RecordType::Start, job, cores));
  }
  void finish(std::int64_t t_us, std::uint32_t job, std::int32_t cores) {
    writer_.append(base(t_us, RecordType::Finish, job, cores));
  }
  void grant(std::int64_t t_us, std::uint32_t job, std::int32_t extra) {
    writer_.append(base(t_us, RecordType::DynGrant, job, extra));
  }
  void release(std::int64_t t_us, std::uint32_t job, std::int32_t cores) {
    writer_.append(base(t_us, RecordType::DynRelease, job, cores));
  }
  void decision(std::int64_t t_us, std::uint32_t job, std::int32_t cores) {
    PackedRecord r = base(t_us, RecordType::DecStartJob, job, cores);
    r.flags = obs::rec::kFlagApplied;
    writer_.append(r);
  }

  void close() { EXPECT_TRUE(writer_.finalize()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static PackedRecord base(std::int64_t t_us, RecordType type,
                           std::uint32_t job, std::int32_t cores) {
    PackedRecord r;
    r.t_us = t_us;
    r.type = type;
    r.job = job;
    r.cores = cores;
    return r;
  }

  std::string path_;
  RecordWriter writer_;
};

Timeseries fold(const std::string& path, std::int64_t bucket_s = 60) {
  RecordReader reader;
  EXPECT_TRUE(reader.open(path)) << reader.error();
  TimeseriesOptions options;
  options.bucket_s = bucket_s;
  return fold_timeseries(reader, options);
}

TEST(Timeseries, UtilizationIntegratesStepFunctionExactly) {
  const std::string path = temp_path("util");
  {
    Builder b(path, 100);
    // 50 cores busy for the first half of the one-minute bucket, 0 after:
    // utilization = 50 * 30 / (100 * 60) = 0.25.
    b.submit(0, 1, 50, "alice");
    b.start(0, 1, 50);
    b.finish(30 * kSecond, 1, 50);
    // A second job pins the series end to exactly t = 60 s.
    b.submit(60 * kSecond, 2, 10, "alice");
    b.close();
  }
  const Timeseries ts = fold(path);
  ASSERT_GE(ts.buckets.size(), 1u);
  EXPECT_EQ(ts.capacity, 100);
  EXPECT_EQ(ts.buckets[0].start_us, 0);
  EXPECT_DOUBLE_EQ(ts.buckets[0].used_core_s, 50.0 * 30.0);
  EXPECT_DOUBLE_EQ(ts.buckets[0].utilization, 0.25);
  std::remove(path.c_str());
}

TEST(Timeseries, QueueDepthIsTimeAveraged) {
  const std::string path = temp_path("queue");
  {
    Builder b(path, 100);
    // Two jobs queued at t=0; one starts at 15 s, the other at 45 s:
    // queued-job-seconds = 2*15 + 1*30 = 60 over a 60 s bucket -> avg 1.0.
    b.submit(0, 1, 10, "alice");
    b.submit(0, 2, 10, "bob");
    b.start(15 * kSecond, 1, 10);
    b.start(45 * kSecond, 2, 10);
    b.submit(60 * kSecond, 3, 1, "alice");
    b.close();
  }
  const Timeseries ts = fold(path);
  ASSERT_GE(ts.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.buckets[0].avg_queue_depth, 1.0);
  std::remove(path.c_str());
}

TEST(Timeseries, PerUserUsageAndCumulativeDelay) {
  const std::string path = temp_path("users");
  {
    Builder b(path, 100);
    // alice runs 20 cores for the whole first bucket; bob's job waits the
    // entire first bucket and runs in the second.
    b.submit(0, 1, 20, "alice");
    b.start(0, 1, 20);
    b.submit(0, 2, 40, "bob");
    b.start(60 * kSecond, 2, 40);
    b.finish(120 * kSecond, 1, 20);
    b.finish(120 * kSecond, 2, 40);
    b.close();
  }
  const Timeseries ts = fold(path);
  ASSERT_GE(ts.buckets.size(), 2u);
  EXPECT_EQ(ts.users, (std::vector<std::string>{"alice", "bob"}));

  // Users idle in a bucket simply have no entry (exports default to 0).
  const auto value = [](const std::map<std::string, double>& m,
                        const std::string& user) {
    const auto it = m.find(user);
    return it == m.end() ? 0.0 : it->second;
  };
  EXPECT_DOUBLE_EQ(value(ts.buckets[0].user_usage_core_s, "alice"),
                   20.0 * 60.0);
  EXPECT_DOUBLE_EQ(value(ts.buckets[0].user_usage_core_s, "bob"), 0.0);
  EXPECT_DOUBLE_EQ(value(ts.buckets[1].user_usage_core_s, "bob"), 40.0 * 60.0);

  // bob's job queued for the whole first bucket: 60 queued-job-seconds,
  // cumulative thereafter; alice never waits.
  EXPECT_DOUBLE_EQ(value(ts.buckets[0].user_cum_delay_s, "bob"), 60.0);
  EXPECT_DOUBLE_EQ(value(ts.buckets[1].user_cum_delay_s, "bob"), 60.0);
  EXPECT_DOUBLE_EQ(value(ts.buckets[1].user_cum_delay_s, "alice"), 0.0);
  std::remove(path.c_str());
}

TEST(Timeseries, DynamicGrowAndReleaseChangeAllocation) {
  const std::string path = temp_path("dyn");
  {
    Builder b(path, 100);
    b.submit(0, 1, 10, "alice");
    b.start(0, 1, 10);
    b.grant(30 * kSecond, 1, 10);    // 10 -> 20 cores
    b.release(60 * kSecond, 1, 5);   // 20 -> 15 cores
    b.finish(90 * kSecond, 1, 15);
    b.close();
  }
  const Timeseries ts = fold(path);
  ASSERT_GE(ts.buckets.size(), 2u);
  // Bucket 0: 10 cores * 30 s + 20 cores * 30 s = 900 core-s.
  EXPECT_DOUBLE_EQ(ts.buckets[0].used_core_s, 900.0);
  // Bucket 1: 15 cores * 30 s.
  EXPECT_DOUBLE_EQ(ts.buckets[1].used_core_s, 450.0);
  std::remove(path.c_str());
}

TEST(Timeseries, DecisionRecordsDoNotPerturbTheCurves) {
  const std::string with_dec = temp_path("withdec");
  const std::string without = temp_path("withoutdec");
  {
    Builder b(with_dec, 100);
    b.submit(0, 1, 10, "alice");
    // A decision record interleaved with the lifecycle stream.
    b.decision(0, 1, 10);
    b.start(0, 1, 10);
    b.finish(30 * kSecond, 1, 10);
    b.close();
  }
  {
    Builder b(without, 100);
    b.submit(0, 1, 10, "alice");
    b.start(0, 1, 10);
    b.finish(30 * kSecond, 1, 10);
    b.close();
  }
  const Timeseries a = fold(with_dec);
  const Timeseries c = fold(without);
  ASSERT_EQ(a.buckets.size(), c.buckets.size());
  for (std::size_t i = 0; i < a.buckets.size(); ++i)
    EXPECT_DOUBLE_EQ(a.buckets[i].used_core_s, c.buckets[i].used_core_s);
  std::remove(with_dec.c_str());
  std::remove(without.c_str());
}

TEST(Timeseries, BucketWidthControlsResolution) {
  const std::string path = temp_path("width");
  {
    Builder b(path, 10);
    b.submit(0, 1, 10, "alice");
    b.start(0, 1, 10);
    b.finish(150 * kSecond, 1, 10);
    b.close();
  }
  const Timeseries coarse = fold(path, 300);
  ASSERT_EQ(coarse.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(coarse.buckets[0].used_core_s, 1500.0);

  const Timeseries fine = fold(path, 30);
  ASSERT_EQ(fine.buckets.size(), 5u);
  for (const auto& bucket : fine.buckets)
    EXPECT_DOUBLE_EQ(bucket.used_core_s, 300.0);
  std::remove(path.c_str());
}

TEST(Timeseries, JsonAndCsvExports) {
  const std::string path = temp_path("export");
  {
    Builder b(path, 100);
    b.submit(0, 1, 10, "alice");
    b.start(0, 1, 10);
    b.finish(90 * kSecond, 1, 10);
    b.close();
  }
  const Timeseries ts = fold(path);

  std::ostringstream json;
  write_timeseries_json(ts, json);
  EXPECT_NE(json.str().find("\"bucket_s\": 60"), std::string::npos);
  EXPECT_NE(json.str().find("\"utilization\":"), std::string::npos);
  EXPECT_NE(json.str().find("\"users\": [\"alice\"]"), std::string::npos);

  std::ostringstream csv;
  write_timeseries_csv(ts, csv);
  const std::string header = csv.str().substr(0, csv.str().find('\n'));
  EXPECT_EQ(header,
            "start_us,utilization,used_core_s,avg_queue_depth,"
            "usage_core_s:alice,cum_delay_s:alice");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbs::metrics
