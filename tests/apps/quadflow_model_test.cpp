#include "apps/quadflow_model.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::apps {
namespace {

amr::QuadflowCase toy_case() {
  amr::QuadflowCase c;
  c.name = "toy";
  c.cells_per_phase = {1000, 2000, 8000};
  c.threshold_cells_per_proc = 300;   // 16 procs -> 4800 cells
  c.iterations_per_phase = 10.0;
  c.seconds_per_cell_iter = 0.01;
  c.min_cells_per_proc = 100.0;
  return c;
}

TEST(QuadflowPhaseTime, StrongScalingWithGrain) {
  const amr::QuadflowCase c = toy_case();
  // Phase 0: 1000 cells on 16 cores -> 62.5 cells/proc < grain 100:
  // underloaded, time = grain * iters * spc = 100*10*0.01 = 10s.
  EXPECT_NEAR(quadflow_phase_time(c, 0, 16).as_seconds(), 10.0, 1e-6);
  // Phase 2: 8000 cells on 16 cores -> 500/proc: time = 500*0.1 = 50s.
  EXPECT_NEAR(quadflow_phase_time(c, 2, 16).as_seconds(), 50.0, 1e-6);
  // 32 cores: 250/proc -> 25s (full 2x).
  EXPECT_NEAR(quadflow_phase_time(c, 2, 32).as_seconds(), 25.0, 1e-6);
}

TEST(QuadflowPhaseTime, TinyGridIsSerial) {
  amr::QuadflowCase c = toy_case();
  c.cells_per_phase = {50};
  c.min_cells_per_proc = 100.0;
  // Whole grid smaller than one grain: time = cells * iters * spc.
  EXPECT_NEAR(quadflow_phase_time(c, 0, 16).as_seconds(), 5.0, 1e-6);
}

TEST(QuadflowTrigger, FiresAtFirstExceedingAdaptation) {
  const amr::QuadflowCase c = toy_case();
  const auto trigger = quadflow_trigger_phase(c, 16);
  ASSERT_TRUE(trigger.has_value());
  EXPECT_EQ(*trigger, 2u);  // 8000/16 = 500 > 300; 2000/16 = 125 <= 300
  // With 64 cores nothing crosses.
  EXPECT_FALSE(quadflow_trigger_phase(c, 64).has_value());
}

TEST(QuadflowTrigger, InitialGridNeverTriggers) {
  amr::QuadflowCase c = toy_case();
  c.cells_per_phase = {100000, 100};
  EXPECT_FALSE(quadflow_trigger_phase(c, 16).has_value());
}

TEST(QuadflowScenario, DynamicExpandsAtTrigger) {
  const amr::QuadflowCase c = toy_case();
  const QuadflowScenario dyn = quadflow_dynamic(c, 16, 16);
  ASSERT_TRUE(dyn.expand_phase.has_value());
  EXPECT_EQ(*dyn.expand_phase, 2u);
  EXPECT_EQ(dyn.final_cores, 32);
  const QuadflowScenario s16 = quadflow_static(c, 16);
  const QuadflowScenario s32 = quadflow_static(c, 32);
  // Before the trigger phases match static-16; at/after, static-32.
  EXPECT_EQ(dyn.phase_durations[0], s16.phase_durations[0]);
  EXPECT_EQ(dyn.phase_durations[1], s16.phase_durations[1]);
  EXPECT_EQ(dyn.phase_durations[2], s32.phase_durations[2]);
  EXPECT_LT(dyn.total(), s16.total());
  EXPECT_GT(dyn.total(), s32.total() - Duration::micros(1));
}

TEST(QuadflowApp, AsksAtTriggerBoundary) {
  const amr::QuadflowCase c = toy_case();
  QuadflowApp app(c, 16);
  const auto d = app.on_start(Time::epoch(), 16);
  // Phase 0 takes 10s (underloaded), phase 1 takes 12.5s; ask at t=22.5.
  ASSERT_TRUE(d.ask.has_value());
  EXPECT_NEAR(d.ask->at.as_seconds(), 22.5, 1e-6);
  EXPECT_EQ(d.ask->extra_cores, 16);
  EXPECT_NEAR(d.finish_at.as_seconds(), 72.5, 1e-6);
}

TEST(QuadflowApp, GrantShortensTail) {
  const amr::QuadflowCase c = toy_case();
  QuadflowApp app(c, 16);
  (void)app.on_start(Time::epoch(), 16);
  const auto d = app.on_grant(Time::from_seconds(23), 32);
  // Remaining phase 2 on 32 cores: 25s.
  EXPECT_NEAR(d.finish_at.as_seconds(), 48.0, 1e-6);
  EXPECT_FALSE(d.ask.has_value());
}

TEST(QuadflowApp, RejectContinuesAndMayRetryLater) {
  amr::QuadflowCase c = toy_case();
  c.cells_per_phase = {1000, 8000, 9000};
  QuadflowApp app(c, 16);
  const auto start = app.on_start(Time::epoch(), 16);
  ASSERT_TRUE(start.ask.has_value());  // trigger at phase 1 boundary (t=10)
  const auto after_reject = app.on_reject(Time::from_seconds(10), 16);
  // Still over threshold at phase 2: retry at the next boundary.
  ASSERT_TRUE(after_reject.ask.has_value());
  EXPECT_NEAR(after_reject.ask->at.as_seconds(), 10.0 + 50.0, 1e-6);
}

TEST(QuadflowApp, NoAskWhenThresholdNeverCrossed) {
  amr::QuadflowCase c = toy_case();
  c.threshold_cells_per_proc = 1e9;
  QuadflowApp app(c, 16);
  EXPECT_FALSE(app.on_start(Time::epoch(), 16).ask.has_value());
}

}  // namespace
}  // namespace dbs::apps
