#include "apps/resilient.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::apps {
namespace {

TEST(ResilientApp, FinishesOnTimeWithoutIncidents) {
  ResilientApp app(Duration::minutes(10));
  const auto d = app.on_start(Time::from_seconds(100), 16);
  EXPECT_EQ(d.finish_at, Time::from_seconds(100) + Duration::minutes(10));
  EXPECT_FALSE(d.ask.has_value());
  EXPECT_DOUBLE_EQ(app.remaining_work(), 600.0 * 16);
}

TEST(ResilientApp, NodeLossStretchesRemainingWork) {
  ResilientApp app(Duration::minutes(10));
  (void)app.on_start(Time::epoch(), 16);
  // Half done at t=300; losing 8 of 16 cores doubles the remaining time.
  const auto d = app.on_nodes_lost(Time::from_seconds(300), 8, 8);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->finish_at, Time::from_seconds(300 + 600));
  ASSERT_TRUE(d->ask.has_value());
  EXPECT_EQ(d->ask->extra_cores, 8);
  EXPECT_EQ(d->ask->at, Time::from_seconds(300));
  EXPECT_EQ(app.losses_survived(), 1);
}

TEST(ResilientApp, ReacquireRestoresOriginalPace) {
  ResilientApp app(Duration::minutes(10));
  (void)app.on_start(Time::epoch(), 16);
  (void)app.on_nodes_lost(Time::from_seconds(300), 8, 8);
  // Replacement granted 10 seconds later: 10s ran at 8 cores.
  const auto d = app.on_grant(Time::from_seconds(310), 16);
  // Remaining work: 16*300 - 8*10 = 4720 core-s -> 295 s at 16 cores.
  EXPECT_EQ(d.finish_at, Time::from_seconds(310 + 295));
}

TEST(ResilientApp, RejectContinuesOnRemainingCores) {
  ResilientApp app(Duration::minutes(10));
  (void)app.on_start(Time::epoch(), 16);
  (void)app.on_nodes_lost(Time::from_seconds(300), 8, 8);
  const auto d = app.on_reject(Time::from_seconds(310), 8);
  // 16*300 - 8*10 = 4720 core-s at 8 cores = 590 s.
  EXPECT_EQ(d.finish_at, Time::from_seconds(310 + 590));
}

TEST(ResilientApp, NoReacquireMode) {
  ResilientApp app(Duration::minutes(10), /*reacquire=*/false);
  (void)app.on_start(Time::epoch(), 16);
  const auto d = app.on_nodes_lost(Time::from_seconds(300), 8, 8);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->ask.has_value());
}

TEST(ResilientApp, MultipleLossesAccumulate) {
  ResilientApp app(Duration::minutes(10), /*reacquire=*/false);
  (void)app.on_start(Time::epoch(), 16);
  (void)app.on_nodes_lost(Time::from_seconds(100), 4, 12);
  const auto d = app.on_nodes_lost(Time::from_seconds(200), 4, 8);
  EXPECT_EQ(app.losses_survived(), 2);
  // Work: 9600 - 16*100 - 12*100 = 6800 core-s at 8 cores = 850 s.
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->finish_at, Time::from_seconds(200 + 850));
}

TEST(ResilientApp, NearCompletionLossFinishesImmediately) {
  ResilientApp app(Duration::seconds(100));
  (void)app.on_start(Time::epoch(), 16);
  const auto d = app.on_nodes_lost(Time::from_seconds(100), 8, 8);
  ASSERT_TRUE(d.has_value());
  // No work left: finishes right away, no spare request scheduled.
  EXPECT_LE(d->finish_at, Time::from_seconds(100) + Duration::millis(1));
  EXPECT_FALSE(d->ask.has_value());
}

TEST(ResilientApp, DefaultAppCannotSurvive) {
  // The base-class default: nullopt -> the server requeues.
  class Plain final : public rms::Application {
   public:
    rms::AppDecision on_start(Time now, CoreCount) override {
      return {now + Duration::minutes(1), std::nullopt, std::nullopt};
    }
    rms::AppDecision on_grant(Time now, CoreCount) override {
      return {now, std::nullopt, std::nullopt};
    }
    rms::AppDecision on_reject(Time now, CoreCount) override {
      return {now, std::nullopt, std::nullopt};
    }
    rms::AppDecision on_released(Time now, CoreCount) override {
      return {now, std::nullopt, std::nullopt};
    }
  } plain;
  EXPECT_FALSE(plain.on_nodes_lost(Time::epoch(), 4, 4).has_value());
}

TEST(ResilientApp, Validation) {
  EXPECT_THROW(ResilientApp{Duration::zero()}, precondition_error);
}

}  // namespace
}  // namespace dbs::apps
