#include <gtest/gtest.h>

#include "apps/app_model.hpp"
#include "common/assert.hpp"

namespace dbs::apps {
namespace {

TEST(ScriptedApp, StepsFireInOrder) {
  ScriptedApp app(Duration::minutes(10),
                  {{Duration::minutes(1), 4, 0, 1.0, Duration::zero()},
                   {Duration::minutes(2), 0, 2, 1.0, Duration::zero()}});
  auto d = app.on_start(Time::epoch(), 8);
  ASSERT_TRUE(d.ask.has_value());
  EXPECT_EQ(d.ask->at, Time::epoch() + Duration::minutes(1));
  d = app.on_grant(Time::epoch() + Duration::minutes(1), 12);
  ASSERT_TRUE(d.release.has_value());
  EXPECT_EQ(d.release->at, Time::epoch() + Duration::minutes(2));
  EXPECT_EQ(d.release->cores, 2);
  d = app.on_released(Time::epoch() + Duration::minutes(2), 10);
  EXPECT_FALSE(d.ask.has_value());
  EXPECT_FALSE(d.release.has_value());
  EXPECT_EQ(app.grants(), 1);
  EXPECT_EQ(app.releases(), 1);
}

TEST(ScriptedApp, GrantScalesRemaining) {
  ScriptedApp app(Duration::minutes(10),
                  {{Duration::minutes(5), 4, 0, 0.5, Duration::zero()}});
  (void)app.on_start(Time::epoch(), 4);
  const auto d = app.on_grant(Time::epoch() + Duration::minutes(5), 8);
  // Remaining 5 min halves -> finish at 7.5 min.
  EXPECT_EQ(d.finish_at, Time::epoch() + Duration::seconds(450));
}

TEST(ScriptedApp, RejectSkipsStepWithoutScaling) {
  ScriptedApp app(Duration::minutes(10),
                  {{Duration::minutes(5), 4, 0, 0.5, Duration::zero()}});
  (void)app.on_start(Time::epoch(), 4);
  const auto d = app.on_reject(Time::epoch() + Duration::minutes(5), 4);
  EXPECT_EQ(d.finish_at, Time::epoch() + Duration::minutes(10));
  EXPECT_EQ(app.rejects(), 1);
}

TEST(ScriptedApp, Validation) {
  // Both grow and shrink in one step.
  EXPECT_THROW(ScriptedApp(Duration::minutes(1),
                           {{Duration::seconds(1), 2, 2, 1.0, {}}}),
               precondition_error);
  // Steps out of order.
  EXPECT_THROW(ScriptedApp(Duration::minutes(1),
                           {{Duration::seconds(10), 2, 0, 1.0, {}},
                            {Duration::seconds(5), 0, 1, 1.0, {}}}),
               precondition_error);
  // Neither grow nor shrink.
  EXPECT_THROW(ScriptedApp(Duration::minutes(1),
                           {{Duration::seconds(1), 0, 0, 1.0, {}}}),
               precondition_error);
}

TEST(MakeApplication, SelectsModelByBehavior) {
  wl::Behavior rigid;
  rigid.static_runtime = Duration::minutes(1);
  EXPECT_STREQ(make_application(rigid)->name(), "rigid");
  wl::Behavior evolving = rigid;
  evolving.evolving = true;
  EXPECT_STREQ(make_application(evolving)->name(), "esp-evolving");
}

}  // namespace
}  // namespace dbs::apps
