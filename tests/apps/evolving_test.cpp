// The dynamic-ESP evolving application model: 16% ask, 25% retry, linear
// speedup reproducing Table I's DET values.
#include "apps/evolving.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::apps {
namespace {

wl::Behavior behavior(std::int64_t set_seconds, CoreCount ask = 4) {
  wl::Behavior b;
  b.static_runtime = Duration::seconds(set_seconds);
  b.evolving = true;
  b.ask_cores = ask;
  return b;
}

TEST(EvolvingApp, AsksAtSixteenPercent) {
  EvolvingApp app(behavior(1000), SpeedupModel::PaperDet);
  const auto d = app.on_start(Time::from_seconds(50), 8);
  EXPECT_EQ(d.finish_at, Time::from_seconds(1050));
  ASSERT_TRUE(d.ask.has_value());
  EXPECT_EQ(d.ask->at, Time::from_seconds(50 + 160));
  EXPECT_EQ(d.ask->extra_cores, 4);
}

TEST(EvolvingApp, GrantShrinksToPaperDet) {
  // Type F: SET 1846, 8 cores + 4 -> DET 1230.67.
  EvolvingApp app(behavior(1846), SpeedupModel::PaperDet);
  (void)app.on_start(Time::epoch(), 8);
  const auto d = app.on_grant(Time::from_seconds(300), 12);
  EXPECT_NEAR(d.finish_at.as_seconds(), 1230.67, 0.01);
  EXPECT_FALSE(d.ask.has_value());
}

TEST(EvolvingApp, TableOneDetParameterized) {
  struct Case {
    std::int64_t set;
    CoreCount cores;
    double det;
  };
  // F, G, I, J of Table I.
  for (const Case c : {Case{1846, 8, 1230.67}, Case{1334, 16, 1067.2},
                       Case{1432, 4, 716.0}, Case{725, 8, 483.33}}) {
    EvolvingApp app(behavior(c.set), SpeedupModel::PaperDet);
    (void)app.on_start(Time::epoch(), c.cores);
    const auto d = app.on_grant(
        Time::epoch() + Duration::seconds(c.set).scaled(0.16), c.cores + 4);
    EXPECT_NEAR(d.finish_at.as_seconds(), c.det, 0.5) << c.set;
  }
}

TEST(EvolvingApp, ScaleRemainingModel) {
  EvolvingApp app(behavior(1000), SpeedupModel::ScaleRemaining);
  (void)app.on_start(Time::epoch(), 8);
  // Grant at t=160: remaining 840s scales by 8/12 -> finish at 160+560=720.
  const auto d = app.on_grant(Time::from_seconds(160), 12);
  EXPECT_NEAR(d.finish_at.as_seconds(), 720.0, 0.01);
}

TEST(EvolvingApp, RejectSchedulesRetryAtQuarter) {
  EvolvingApp app(behavior(1000), SpeedupModel::PaperDet);
  (void)app.on_start(Time::from_seconds(100), 8);
  const auto d = app.on_reject(Time::from_seconds(265), 8);
  EXPECT_EQ(d.finish_at, Time::from_seconds(1100));  // unchanged
  ASSERT_TRUE(d.ask.has_value());
  EXPECT_EQ(d.ask->at, Time::from_seconds(100 + 250));
}

TEST(EvolvingApp, RetryImmediateWhenQuarterAlreadyPassed) {
  EvolvingApp app(behavior(1000), SpeedupModel::PaperDet);
  (void)app.on_start(Time::epoch(), 8);
  const auto d = app.on_reject(Time::from_seconds(400), 8);
  ASSERT_TRUE(d.ask.has_value());
  EXPECT_EQ(d.ask->at, Time::from_seconds(400));
}

TEST(EvolvingApp, SecondRejectGivesUp) {
  EvolvingApp app(behavior(1000), SpeedupModel::PaperDet);
  (void)app.on_start(Time::epoch(), 8);
  (void)app.on_reject(Time::from_seconds(170), 8);
  const auto d = app.on_reject(Time::from_seconds(260), 8);
  EXPECT_FALSE(d.ask.has_value());
  EXPECT_EQ(d.finish_at, Time::from_seconds(1000));
}

TEST(EvolvingApp, GrantAfterRetrySucceeds) {
  EvolvingApp app(behavior(1000), SpeedupModel::ScaleRemaining);
  (void)app.on_start(Time::epoch(), 8);
  (void)app.on_reject(Time::from_seconds(170), 8);
  const auto d = app.on_grant(Time::from_seconds(250), 12);
  // Remaining 750 scales by 2/3 -> finish 250+500 = 750.
  EXPECT_NEAR(d.finish_at.as_seconds(), 750.0, 0.01);
  EXPECT_FALSE(d.ask.has_value());
}

TEST(EvolvingApp, PaperDetNeverFinishesInThePast) {
  EvolvingApp app(behavior(1000), SpeedupModel::PaperDet);
  (void)app.on_start(Time::epoch(), 8);
  // A pathologically late grant (after DET would have passed).
  const auto d = app.on_grant(Time::from_seconds(900), 12);
  EXPECT_GE(d.finish_at, Time::from_seconds(900));
}

TEST(EvolvingApp, RestartAfterPreemptionResets) {
  EvolvingApp app(behavior(1000), SpeedupModel::PaperDet);
  (void)app.on_start(Time::epoch(), 8);
  (void)app.on_reject(Time::from_seconds(170), 8);
  // Preempted and restarted: the schedule starts over.
  const auto d = app.on_start(Time::from_seconds(5000), 8);
  EXPECT_EQ(d.finish_at, Time::from_seconds(6000));
  ASSERT_TRUE(d.ask.has_value());
  EXPECT_EQ(d.ask->at, Time::from_seconds(5160));
}

TEST(EvolvingApp, Validation) {
  wl::Behavior b = behavior(0);
  EXPECT_THROW((EvolvingApp{b, SpeedupModel::PaperDet}), precondition_error);
  b = behavior(100, 0);
  EXPECT_THROW((EvolvingApp{b, SpeedupModel::PaperDet}), precondition_error);
  b = behavior(100);
  b.first_ask_frac = 0.5;
  b.retry_frac = 0.3;
  EXPECT_THROW((EvolvingApp{b, SpeedupModel::PaperDet}), precondition_error);
}

}  // namespace
}  // namespace dbs::apps
