#include "apps/rigid.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::apps {
namespace {

TEST(RigidApp, FinishesAfterRuntime) {
  RigidApp app(Duration::minutes(5));
  const rms::AppDecision d = app.on_start(Time::from_seconds(100), 8);
  EXPECT_EQ(d.finish_at, Time::from_seconds(100) + Duration::minutes(5));
  EXPECT_FALSE(d.ask.has_value());
  EXPECT_FALSE(d.release.has_value());
}

TEST(RigidApp, RuntimeIndependentOfCores) {
  RigidApp a(Duration::minutes(5));
  RigidApp b(Duration::minutes(5));
  EXPECT_EQ(a.on_start(Time::epoch(), 1).finish_at,
            b.on_start(Time::epoch(), 128).finish_at);
}

TEST(RigidApp, Validation) {
  EXPECT_THROW(RigidApp{Duration::zero()}, precondition_error);
  RigidApp app(Duration::minutes(1));
  EXPECT_THROW((void)app.on_start(Time::epoch(), 0), precondition_error);
}

TEST(RigidApp, NeverInteractsDynamically) {
  RigidApp app(Duration::minutes(1));
  (void)app.on_start(Time::epoch(), 4);
  EXPECT_THROW((void)app.on_grant(Time::epoch(), 8), invariant_error);
  EXPECT_THROW((void)app.on_reject(Time::epoch(), 4), invariant_error);
  EXPECT_THROW((void)app.on_released(Time::epoch(), 2), invariant_error);
}

}  // namespace
}  // namespace dbs::apps
