// IngestQueue contract: whatever the producer interleaving, drain()
// releases the exact ticket sequence 0,1,2,... — the total order every
// replay (WAL recovery, single-threaded differential) reproduces. The
// concurrent tests hammer the seq-contiguity rule: a drain must never let
// ticket n+1 overtake a ticket n still in flight in another thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "svc/ingest.hpp"
#include "../testutil.hpp"

namespace dbs::svc {
namespace {

IngestRecord submit_record(IngestQueue& q, std::int64_t at_us,
                           const std::string& name) {
  IngestRecord r;
  r.kind = IngestKind::Submit;
  r.requested = Time::from_micros(at_us);
  r.spec = test::spec(name, 4, Duration::seconds(60));
  r.behavior.static_runtime = Duration::seconds(30);
  q.submit(r.requested, r.spec, r.behavior);
  return r;
}

TEST(IngestQueue, SingleThreadedDrainYieldsPushOrder) {
  IngestQueue q(4);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.pushed(), 0u);

  const IngestRecord a = submit_record(q, 100, "a");
  const IngestRecord b = submit_record(q, 50, "b");  // earlier time, later seq
  EXPECT_EQ(q.cancel(Time::from_micros(120), JobId(7)), 2u);
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.pushed(), 3u);

  std::vector<IngestRecord> out;
  EXPECT_EQ(q.drain(out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(q.depth(), 0u);

  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].kind, IngestKind::Submit);
  EXPECT_EQ(out[0].requested, a.requested);
  EXPECT_EQ(out[0].spec.name, "a");
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(out[1].requested, b.requested);
  EXPECT_EQ(out[2].seq, 2u);
  EXPECT_EQ(out[2].kind, IngestKind::Cancel);
  EXPECT_EQ(out[2].job, JobId(7));

  // Drain on an empty queue releases nothing and appends nothing.
  EXPECT_EQ(q.drain(out), 0u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(IngestQueue, DrainAppendsToExistingOutput) {
  IngestQueue q(2);
  submit_record(q, 10, "first");
  std::vector<IngestRecord> out;
  q.drain(out);
  submit_record(q, 20, "second");
  q.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 1u);
}

TEST(IngestQueue, CloseRejectsFurtherPushes) {
  IngestQueue q;
  submit_record(q, 1, "ok");
  EXPECT_FALSE(q.closed());
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_THROW(q.submit(Time::from_micros(2), test::spec("late", 1,
                                                         Duration::seconds(1)),
                        wl::Behavior{}),
               precondition_error);
  // What was queued before close() still drains.
  std::vector<IngestRecord> out;
  EXPECT_EQ(q.drain(out), 1u);
}

TEST(IngestQueue, RejectsInvalidCancelAndZeroShards) {
  IngestQueue q;
  EXPECT_THROW(q.cancel(Time::from_micros(1), JobId::invalid()),
               precondition_error);
  EXPECT_THROW(IngestQueue bad(0), precondition_error);
}

// The core concurrency contract, asserted on EVERY drain: each batch is the
// exact continuation 0,1,2,... of the sequence so far. If a drain ever
// skipped an unlanded ticket (the race the consumer stash exists for), the
// contiguity check here fires. Runs with more threads than shards so shard
// collisions and overtakes are common.
TEST(IngestQueue, ConcurrentProducersDrainInTicketOrder) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  constexpr std::uint64_t kTotal = kThreads * kPerThread;

  IngestQueue q(4);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&q, &go, t]() {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // requested encodes (thread, index) so the drained records can be
        // traced back to their producer below.
        q.submit(Time::from_micros(static_cast<std::int64_t>(
                     t * kPerThread + i + 1)),
                 test::spec("j", 1, Duration::seconds(1)), wl::Behavior{});
        // Let the consumer (and the other producers) in regularly so the
        // drains genuinely interleave with production — also on one CPU.
        if (i % 64 == 0) std::this_thread::yield();
      }
    });
  }

  std::uint64_t next_seq = 0;
  std::vector<IngestRecord> batch;
  std::size_t drains = 0;
  std::size_t partial_drains = 0;
  go.store(true, std::memory_order_release);
  while (next_seq < kTotal) {
    batch.clear();
    const std::size_t n = q.drain(batch);
    ASSERT_EQ(n, batch.size());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(batch[i].seq, next_seq + i)
          << "drain released a non-contiguous ticket";
    next_seq += n;
    ++drains;
    if (n > 0 && next_seq < kTotal) ++partial_drains;
    if (n == 0) std::this_thread::yield();
  }
  for (auto& p : producers) p.join();

  EXPECT_EQ(q.pushed(), kTotal);
  EXPECT_EQ(q.depth(), 0u);
  batch.clear();
  EXPECT_EQ(q.drain(batch), 0u);
  // The loop overlapped the producers (it did not just see one final
  // batch); otherwise this test exercised nothing concurrent.
  EXPECT_GT(partial_drains, 0u) << "drains never overlapped the producers";

  // Every pushed record came out exactly once: per producer, its records
  // appear in its own push order even though global tickets interleave.
  GTEST_LOG_(INFO) << "drains=" << drains;
}

// Per-producer FIFO: a single producer's records keep their relative order
// in the drained sequence (tickets are drawn inside push, in program
// order). Checked by re-draining a fresh run and tracking each thread's
// last-seen index via the requested-time encoding.
TEST(IngestQueue, DrainPreservesPerProducerOrder) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 1500;

  IngestQueue q(2);
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&q, t]() {
      for (std::size_t i = 0; i < kPerThread; ++i)
        q.submit(Time::from_micros(static_cast<std::int64_t>(
                     t * 1'000'000 + i)),
                 test::spec("j", 1, Duration::seconds(1)), wl::Behavior{});
    });
  }
  for (auto& p : producers) p.join();

  std::vector<IngestRecord> out;
  ASSERT_EQ(q.drain(out), kThreads * kPerThread);
  std::vector<std::int64_t> last_index(kThreads, -1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].seq, i);
    const std::int64_t encoded = out[i].requested.as_micros();
    const std::size_t thread = static_cast<std::size_t>(encoded / 1'000'000);
    const std::int64_t index = encoded % 1'000'000;
    ASSERT_LT(thread, kThreads);
    EXPECT_GT(index, last_index[thread])
        << "a producer's records were reordered";
    last_index[thread] = index;
  }
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(last_index[t], static_cast<std::int64_t>(kPerThread) - 1);
}

}  // namespace
}  // namespace dbs::svc
