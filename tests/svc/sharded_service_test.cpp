// Sharded always-on service guarantees:
//
//   * ticking all K shard loops concurrently writes byte-identical
//     per-shard WAL files to ticking them serially (the determinism
//     contract, extended to the durable path);
//   * a clean stop + reopen recovers every shard in parallel and
//     continues to the uninterrupted result, with the router's
//     least-loaded ledger reseeded from the per-shard WAL submit totals;
//   * cancels are rejected on the global queue (JobIds are per-shard).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "batch/sharded_system.hpp"
#include "common/assert.hpp"
#include "metrics/report.hpp"
#include "svc/ingest.hpp"
#include "svc/sharded_service.hpp"
#include "svc/state_store.hpp"

namespace dbs::svc {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 4;

batch::SystemConfig durable_machine() {
  batch::SystemConfig cfg;
  cfg.cluster.node_count = 16;  // 4 nodes x 8 cores per shard
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 4;
  cfg.latency = rms::LatencyModel::zero();
  cfg.streaming_metrics = true;
  cfg.retire_finished_jobs = true;
  return cfg;
}

batch::ShardConfig shard_config(std::size_t threads) {
  batch::ShardConfig sc;
  sc.shards = kShards;
  sc.map = batch::ShardMapKind::Range;
  sc.policy = core::RoutePolicy::LeastLoaded;
  sc.threads = threads;
  return sc;
}

wl::Workload mixed_workload(int jobs = 120) {
  wl::Workload w;
  for (int i = 0; i < jobs; ++i) {
    wl::SubmitSpec s;
    s.at = Time::from_seconds(i * 120);
    s.spec.name = "job" + std::to_string(i);
    s.spec.cred = {"user" + std::to_string(i % 11), "grp", "", "batch", ""};
    s.spec.cores = static_cast<CoreCount>(1 + (i * 3) % 12);
    s.spec.walltime = Duration::minutes(45);
    s.behavior.static_runtime = Duration::minutes(4 + (i * 7) % 25);
    w.total_cores += s.spec.cores;
    w.jobs.push_back(std::move(s));
  }
  return w;
}

ServiceConfig service_config(const std::string& dir,
                             std::uint64_t max_ticks = 0) {
  ServiceConfig scfg;
  scfg.state_dir = dir;
  scfg.snapshot_every = 16;
  scfg.keep_snapshots = 0;
  scfg.tick = Duration::seconds(3600);
  scfg.max_ticks = max_ticks;
  return scfg;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("dbs_sharded_svc_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

struct ServiceRun {
  metrics::WorkloadSummary summary;
  bool recovered = false;
  std::uint64_t wal_ingest = 0;
  std::uint64_t wal_decisions = 0;
  std::vector<std::uint64_t> routed_cores;
  std::vector<std::uint64_t> routed_jobs;
};

/// Pre-fills the global queue with the whole workload (minus whatever a
/// recovered WAL already holds — routing is deterministic in global ticket
/// order, so the first `skip` records are exactly the WAL-held ones) and
/// runs the service to completion or max_ticks. The deterministic feed is
/// what makes WAL bytes comparable across runs: a live producer thread
/// races wall-clock tick boundaries and batches differently every time.
ServiceRun run_service(const wl::Workload& workload, const std::string& dir,
                       std::size_t threads, std::uint64_t max_ticks = 0) {
  batch::ShardedSystem system(durable_machine(), shard_config(threads));
  IngestQueue ingest;
  ShardedService service(system, ingest, service_config(dir, max_ticks));

  ServiceRun r;
  r.recovered = service.open();
  const std::uint64_t skip = service.wal_ingest_total();
  std::uint64_t yielded = 0;
  for (const auto& s : workload.jobs) {
    if (++yielded <= skip) continue;
    ingest.submit(s.at, s.spec, s.behavior);
  }
  ingest.close();
  service.run();

  r.summary = system.summary();
  r.wal_ingest = service.wal_ingest_total();
  r.wal_decisions = service.wal_decision_total();
  r.routed_cores = system.router().routed_cores();
  for (std::size_t k = 0; k < kShards; ++k)
    r.routed_jobs.push_back(system.router().routed_jobs(k));
  return r;
}

void expect_summaries_equal(const metrics::WorkloadSummary& a,
                            const metrics::WorkloadSummary& b) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.max_wait, b.max_wait);
  EXPECT_EQ(a.avg_turnaround, b.avg_turnaround);
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(ShardedService, ParallelTicksWriteByteIdenticalShardWals) {
  const wl::Workload workload = mixed_workload();
  TempDir dir("wal_identity");
  const ServiceRun serial = run_service(workload, dir.sub("serial"), 1);
  const ServiceRun parallel = run_service(workload, dir.sub("parallel"), 4);

  EXPECT_EQ(serial.wal_ingest, workload.jobs.size());
  EXPECT_EQ(parallel.wal_ingest, serial.wal_ingest);
  EXPECT_EQ(parallel.wal_decisions, serial.wal_decisions);
  for (std::size_t k = 0; k < kShards; ++k) {
    const auto a = read_file(wal_path(shard_state_dir(dir.sub("serial"), k)));
    const auto b =
        read_file(wal_path(shard_state_dir(dir.sub("parallel"), k)));
    EXPECT_FALSE(a.empty()) << k;
    EXPECT_EQ(a, b) << "shard " << k << " WAL diverged across thread counts";
  }
  expect_summaries_equal(parallel.summary, serial.summary);
  EXPECT_EQ(parallel.routed_jobs, serial.routed_jobs);
}

TEST(ShardedService, StopAndReopenContinuesToTheSameResult) {
  const wl::Workload workload = mixed_workload();
  TempDir dir("reopen");
  const ServiceRun uninterrupted =
      run_service(workload, dir.sub("base"), 2);
  ASSERT_FALSE(uninterrupted.recovered);
  EXPECT_EQ(uninterrupted.summary.jobs_completed,
            static_cast<std::int64_t>(workload.jobs.size()));

  // Stop after 3 driver cycles, then reopen the same directories: every
  // shard recovers (snapshot + WAL tail) in parallel and the run finishes
  // to the uninterrupted result.
  const ServiceRun stopped = run_service(workload, dir.sub("split"), 2, 3);
  ASSERT_LT(stopped.wal_decisions, uninterrupted.wal_decisions)
      << "max_ticks did not stop mid-run; shrink it";
  const ServiceRun resumed = run_service(workload, dir.sub("split"), 2);
  EXPECT_TRUE(resumed.recovered);
  expect_summaries_equal(resumed.summary, uninterrupted.summary);
  EXPECT_EQ(resumed.wal_ingest, uninterrupted.wal_ingest);
  EXPECT_EQ(resumed.wal_decisions, uninterrupted.wal_decisions);
  for (std::size_t k = 0; k < kShards; ++k) {
    // Per-shard decision streams across the shutdown must match the
    // uninterrupted run frame for frame (the same contract the unsharded
    // ServiceLoop reopen test pins, here once per shard).
    const WalContents base_wal =
        read_wal(wal_path(shard_state_dir(dir.sub("base"), k)));
    const WalContents split_wal =
        read_wal(wal_path(shard_state_dir(dir.sub("split"), k)));
    ASSERT_EQ(split_wal.decisions.size(), base_wal.decisions.size()) << k;
    for (std::size_t i = 0; i < base_wal.decisions.size(); ++i)
      ASSERT_EQ(split_wal.decisions[i].payload, base_wal.decisions[i].payload)
          << "shard " << k << " decision " << i
          << " diverged across the shutdown";
  }
}

TEST(ShardedService, ReopenReseedsTheRouterLedgerFromShardWals) {
  const wl::Workload workload = mixed_workload();
  TempDir dir("ledger");
  const ServiceRun first = run_service(workload, dir.sub("state"), 2);

  // A fresh service over the same state: open() must rebuild the exact
  // cumulative ledger, so future jobs route as if the process never died.
  batch::ShardedSystem system(durable_machine(), shard_config(2));
  IngestQueue ingest;
  ShardedService service(system, ingest, service_config(dir.sub("state")));
  EXPECT_TRUE(service.open());
  EXPECT_EQ(system.router().routed_cores(), first.routed_cores);
  for (std::size_t k = 0; k < kShards; ++k)
    EXPECT_EQ(system.router().routed_jobs(k), first.routed_jobs[k]) << k;
  ingest.close();
  service.run();
}

TEST(ShardedService, CancelOnTheGlobalQueueIsRejected) {
  batch::ShardedSystem system(durable_machine(), shard_config(1));
  IngestQueue ingest;
  ShardedService service(system, ingest, ServiceConfig{});
  ingest.cancel(Time::from_seconds(10), JobId{1});
  EXPECT_THROW(service.tick(), precondition_error);
}

}  // namespace
}  // namespace dbs::svc
