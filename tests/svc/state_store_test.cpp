// Durable-state building blocks in isolation: the snapshot codec (encode /
// decode / reject), capture_state/restore_state fidelity per component, the
// WAL writer/reader pair, torn-tail tolerance at every byte offset, and the
// state-directory policies (best-snapshot selection, pruning).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "batch/batch_system.hpp"
#include "common/assert.hpp"
#include "metrics/report.hpp"
#include "svc/state_store.hpp"
#include "../testutil.hpp"
#include "workload/swf/swf_gen.hpp"
#include "workload/swf/swf_source.hpp"

namespace dbs::svc {
namespace {

namespace fs = std::filesystem;

batch::SystemConfig durable_config() {
  batch::SystemConfig cfg;
  cfg.cluster.node_count = 8;
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 4;
  cfg.latency = rms::LatencyModel::zero();
  cfg.streaming_metrics = true;
  return cfg;
}

wl::Workload make_workload(std::uint64_t jobs, std::uint64_t seed) {
  wl::swf::SwfGenParams gp;
  gp.jobs = jobs;
  gp.seed = seed;
  std::ostringstream out;
  wl::swf::generate_swf(out, gp);

  wl::swf::SwfSourceConfig scfg;
  scfg.overlay_dynamic_fraction = 0.3;
  std::istringstream in(out.str());
  wl::swf::SwfSource source(in, scfg);
  source.set_max_cores(8 * 8);

  wl::Workload workload;
  wl::SubmitSpec s;
  while (source.next(s)) workload.jobs.push_back(s);
  return workload;
}

/// Runs a real system just past its last arrival (every submission fired,
/// plenty still queued and running) and captures it there: a rich,
/// quiescent mid-flight state for codec and restore tests.
struct CapturedRun {
  std::unique_ptr<batch::BatchSystem> system;
  SystemState state;
  Time captured_at;
};

CapturedRun capture_mid_run(std::uint64_t jobs = 60, std::uint64_t seed = 11) {
  const wl::Workload workload = make_workload(jobs, seed);
  Time last_arrival;
  for (const auto& s : workload.jobs) last_arrival = max(last_arrival, s.at);

  CapturedRun run;
  run.system = std::make_unique<batch::BatchSystem>(durable_config());
  run.system->submit_workload(workload);
  run.captured_at = last_arrival + Duration::seconds(1);
  run.system->run_until(run.captured_at);
  run.state = capture_state(*run.system);
  run.state.last_admitted = last_arrival;
  run.state.wal_ingest = workload.jobs.size();
  run.state.wal_decisions = 12345;
  run.state.rng = {1, 2, 3, 4};
  return run;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("dbs_svc_test_" + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  fs::path dir_;
};

// --- snapshot codec --------------------------------------------------------

TEST(StateCodec, RoundTripsEveryComponent) {
  const CapturedRun run = capture_mid_run();
  const SystemState& s = run.state;
  // The capture is mid-flight, not trivial: queued jobs, live moms,
  // scheduler ledgers and metrics all non-empty.
  ASSERT_FALSE(s.jobs.empty());
  ASSERT_FALSE(s.moms.empty());
  ASSERT_FALSE(s.node_states.empty());

  const std::vector<unsigned char> bytes = encode_state(s);
  const SystemState d = decode_state(bytes);

  // Component by component first, so a codec regression names the layer it
  // broke instead of one opaque "states differ".
  EXPECT_EQ(d.now, s.now);
  EXPECT_EQ(d.next_job, s.next_job);
  EXPECT_EQ(d.next_request, s.next_request);
  EXPECT_TRUE(d.jobs == s.jobs);
  EXPECT_TRUE(d.dyn_fifo == s.dyn_fifo);
  EXPECT_TRUE(d.hints == s.hints);
  EXPECT_TRUE(d.node_states == s.node_states);
  EXPECT_TRUE(d.moms == s.moms);
  EXPECT_TRUE(d.scheduler == s.scheduler);
  EXPECT_TRUE(d.metrics == s.metrics);
  EXPECT_EQ(d.last_admitted, s.last_admitted);
  EXPECT_EQ(d.wal_ingest, s.wal_ingest);
  EXPECT_EQ(d.wal_decisions, s.wal_decisions);
  EXPECT_TRUE(d.rng == s.rng);
  EXPECT_TRUE(d == s);

  // Deterministic encoding: the same state encodes to the same bytes.
  EXPECT_EQ(encode_state(d), bytes);
}

TEST(StateCodec, RejectsBadMagicBadVersionAndTruncation) {
  const CapturedRun run = capture_mid_run(20, 3);
  std::vector<unsigned char> bytes = encode_state(run.state);

  {
    std::vector<unsigned char> bad = bytes;
    bad[0] ^= 0xFF;
    EXPECT_THROW(decode_state(bad), precondition_error);
  }
  {
    std::vector<unsigned char> bad = bytes;
    bad[4] ^= 0xFF;  // version word follows the magic
    EXPECT_THROW(decode_state(bad), precondition_error);
  }
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_THROW(decode_state(bytes.data(), keep), precondition_error)
        << "truncation to " << keep << " bytes must be rejected";
  }
}

// --- capture/restore fidelity ----------------------------------------------

TEST(StateRestore, RestoredSystemRecapturesIdentically) {
  CapturedRun run = capture_mid_run();

  batch::BatchSystem restored(durable_config());
  restore_state(restored, run.state);
  SystemState again = capture_state(restored);
  again.last_admitted = run.state.last_admitted;
  again.wal_ingest = run.state.wal_ingest;
  again.wal_decisions = run.state.wal_decisions;
  again.rng = run.state.rng;

  EXPECT_EQ(again.now, run.state.now);
  EXPECT_TRUE(again.jobs == run.state.jobs);
  EXPECT_TRUE(again.dyn_fifo == run.state.dyn_fifo);
  EXPECT_TRUE(again.hints == run.state.hints);
  EXPECT_TRUE(again.node_states == run.state.node_states);
  EXPECT_TRUE(again.moms == run.state.moms);
  EXPECT_TRUE(again.scheduler == run.state.scheduler);
  EXPECT_TRUE(again.metrics == run.state.metrics);
  EXPECT_TRUE(again == run.state);
}

TEST(StateRestore, RestoredSystemFinishesLikeTheOriginal) {
  CapturedRun run = capture_mid_run();

  batch::BatchSystem restored(durable_config());
  restore_state(restored, run.state);

  run.system->run();
  restored.run();

  const metrics::WorkloadSummary a = metrics::summarize(run.system->recorder());
  const metrics::WorkloadSummary b = metrics::summarize(restored.recorder());
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.evolving_jobs, b.evolving_jobs);
  EXPECT_EQ(a.satisfied_dyn_jobs, b.satisfied_dyn_jobs);
  EXPECT_EQ(a.granted_dyn_requests, b.granted_dyn_requests);
  EXPECT_EQ(a.backfilled_jobs, b.backfilled_jobs);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.max_wait, b.max_wait);
  EXPECT_EQ(a.avg_turnaround, b.avg_turnaround);
}

// --- WAL -------------------------------------------------------------------

IngestRecord sample_submit(std::uint64_t seq) {
  IngestRecord r;
  r.seq = seq;
  r.kind = IngestKind::Submit;
  r.requested = Time::from_micros(static_cast<std::int64_t>(100 * seq + 7));
  r.admitted = r.requested + Duration::micros(1);
  r.spec = test::spec("wal_job_" + std::to_string(seq), 4,
                      Duration::seconds(3600), "carol");
  r.behavior.static_runtime = Duration::seconds(1800);
  r.behavior.evolving = true;
  r.behavior.ask_cores = 6;
  return r;
}

IngestRecord sample_cancel(std::uint64_t seq) {
  IngestRecord r;
  r.seq = seq;
  r.kind = IngestKind::Cancel;
  r.requested = Time::from_micros(static_cast<std::int64_t>(100 * seq + 9));
  r.admitted = r.requested + Duration::micros(2);
  r.job = JobId(seq);
  return r;
}

rms::Decision sample_decision(std::uint64_t i) {
  rms::Decision d;
  switch (i % 3) {
    case 0:
      d.kind = rms::DecisionKind::StartJob;
      d.job = JobId(i);
      d.backfilled = (i % 2) != 0;
      break;
    case 1:
      d.kind = rms::DecisionKind::Reserve;
      d.job = JobId(i);
      d.cores = static_cast<CoreCount>(4 + i);
      d.start = Time::from_micros(static_cast<std::int64_t>(1000 * i));
      break;
    default:
      d.kind = rms::DecisionKind::GrantDyn;
      d.job = JobId(i);
      d.request = RequestId(i * 2);
      d.cores = 2;
      break;
  }
  return d;
}

TEST(IngestCodec, RoundTripsSubmitAndCancel) {
  for (const IngestRecord& r : {sample_submit(3), sample_cancel(9)}) {
    const std::vector<unsigned char> bytes = encode_ingest(r);
    const IngestRecord d = decode_ingest(bytes.data(), bytes.size());
    EXPECT_TRUE(d == r);
  }
  const std::vector<unsigned char> bytes = encode_ingest(sample_submit(1));
  EXPECT_THROW(decode_ingest(bytes.data(), bytes.size() / 2),
               precondition_error);
}

TEST(Wal, WriterReaderRoundTrip) {
  TempDir dir("wal_roundtrip");
  const std::string path = wal_path(dir.path());

  std::vector<IngestRecord> ingests;
  std::vector<std::vector<unsigned char>> decision_payloads;
  {
    WalWriter writer(path);
    for (std::uint64_t i = 0; i < 4; ++i) {
      IngestRecord r = (i % 2 == 0) ? sample_submit(i) : sample_cancel(i);
      writer.append_ingest(r);
      ingests.push_back(std::move(r));
      const Time at = Time::from_micros(static_cast<std::int64_t>(10 * i));
      const rms::Decision d = sample_decision(i);
      writer.append_decision(at, /*iteration=*/i, d);
      decision_payloads.push_back(encode_decision(at, i, d));
    }
    writer.sync();
    EXPECT_EQ(writer.appended_ingest(), 4u);
    EXPECT_EQ(writer.appended_decisions(), 4u);
  }

  const WalContents wal = read_wal(path);
  ASSERT_EQ(wal.ingest.size(), 4u);
  ASSERT_EQ(wal.decisions.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(wal.ingest[i] == ingests[i]);
    EXPECT_EQ(wal.decisions[i].payload, decision_payloads[i]);
    EXPECT_EQ(wal.decisions[i].iteration, i);
    EXPECT_EQ(wal.decisions[i].at.as_micros(),
              static_cast<std::int64_t>(10 * i));
  }
  EXPECT_EQ(wal.valid_bytes, fs::file_size(path));

  // Reopen at valid_bytes and append: the continuation reads back whole.
  {
    WalWriter writer(path, wal.valid_bytes);
    writer.append_ingest(sample_submit(99));
    writer.sync();
  }
  const WalContents more = read_wal(path);
  ASSERT_EQ(more.ingest.size(), 5u);
  EXPECT_EQ(more.ingest.back().seq, 99u);
  EXPECT_EQ(more.decisions.size(), 4u);
}

TEST(Wal, MissingFileIsEmptyAndForeignFilesAreRejected) {
  TempDir dir("wal_missing");
  const WalContents none = read_wal(wal_path(dir.path()));
  EXPECT_TRUE(none.ingest.empty());
  EXPECT_TRUE(none.decisions.empty());
  EXPECT_EQ(none.valid_bytes, 0u);

  const std::string foreign = dir.path() + "/foreign.bin";
  std::ofstream(foreign, std::ios::binary) << "NOTAWALFILE_____";
  EXPECT_THROW((void)read_wal(foreign), precondition_error);
}

// Torn-tail tolerance, exhaustively: for EVERY byte prefix of a real WAL,
// read_wal() recovers exactly the records whose frames fit the prefix and
// reports valid_bytes at that frame boundary — the offset recovery uses to
// reopen the log. A crash can cut the file anywhere; no cut may lose a
// complete record or resurrect a partial one.
TEST(Wal, ToleratesTruncationAtEveryByteOffset) {
  TempDir dir("wal_torn");
  const std::string path = wal_path(dir.path());

  // Frame boundaries, tracked as records are appended.
  std::vector<std::uint64_t> boundaries{kWalHeaderSize};
  std::size_t records = 0;
  {
    WalWriter writer(path);
    for (std::uint64_t i = 0; i < 3; ++i) {
      const IngestRecord r = (i % 2 == 0) ? sample_submit(i) : sample_cancel(i);
      writer.append_ingest(r);
      boundaries.push_back(boundaries.back() + 5 + encode_ingest(r).size());
      ++records;
      const Time at = Time::from_micros(static_cast<std::int64_t>(i));
      const rms::Decision d = sample_decision(i);
      writer.append_decision(at, i, d);
      boundaries.push_back(boundaries.back() + 5 +
                           encode_decision(at, i, d).size());
      ++records;
    }
    writer.sync();
  }
  std::vector<unsigned char> full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(full.size(), boundaries.back());

  const std::string cut_path = dir.path() + "/cut.dbsw";
  for (std::size_t keep = 0; keep <= full.size(); ++keep) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(full.data()),
                static_cast<std::streamsize>(keep));
    }
    if (keep < kWalHeaderSize) {
      // A crash inside the 8-byte header loses the log's identity; that is
      // a hard error, not a torn tail.
      EXPECT_THROW((void)read_wal(cut_path), precondition_error);
      continue;
    }
    // The longest frame boundary that fits the prefix.
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= keep)
      ++complete;
    const WalContents wal = read_wal(cut_path);
    EXPECT_EQ(wal.ingest.size() + wal.decisions.size(), complete)
        << "prefix of " << keep << " bytes";
    EXPECT_EQ(wal.valid_bytes, boundaries[complete])
        << "prefix of " << keep << " bytes";
  }
}

// --- state directory policies ----------------------------------------------

TEST(StateDir, BestSnapshotRespectsWalConsistency) {
  TempDir dir("best_snapshot");
  CapturedRun run = capture_mid_run(20, 4);

  for (const std::uint64_t decisions : {10u, 20u, 30u}) {
    run.state.wal_decisions = decisions;
    run.state.wal_ingest = decisions / 2;
    write_snapshot(dir.path(), run.state);
  }

  // Newest consistent image wins; images claiming more than the WAL holds
  // are skipped (a crash can lose a snapshot's tail, never un-write the
  // log).
  std::optional<SystemState> best = load_best_snapshot(dir.path(), 100, 100);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->wal_decisions, 30u);

  best = load_best_snapshot(dir.path(), 100, 25);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->wal_decisions, 20u);

  // The ingest count gates too: WAL ingest below the image's claim.
  best = load_best_snapshot(dir.path(), 9, 100);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->wal_decisions, 10u);

  best = load_best_snapshot(dir.path(), 0, 0);
  EXPECT_FALSE(best.has_value());
}

TEST(StateDir, CorruptSnapshotFallsBackToOlderImage) {
  TempDir dir("corrupt_snapshot");
  CapturedRun run = capture_mid_run(20, 5);

  run.state.wal_decisions = 10;
  run.state.wal_ingest = 5;
  write_snapshot(dir.path(), run.state);
  run.state.wal_decisions = 20;
  write_snapshot(dir.path(), run.state);

  // Garbage where the newest image should be: skipped, not fatal.
  std::ofstream(snapshot_path(dir.path(), 20),
                std::ios::binary | std::ios::trunc)
      << "garbage";
  const std::optional<SystemState> best =
      load_best_snapshot(dir.path(), 100, 100);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->wal_decisions, 10u);
}

TEST(StateDir, PruneKeepsNewestImages) {
  TempDir dir("prune");
  CapturedRun run = capture_mid_run(20, 6);
  for (const std::uint64_t decisions : {5u, 10u, 15u, 20u, 25u, 30u}) {
    run.state.wal_decisions = decisions;
    write_snapshot(dir.path(), run.state);
  }

  EXPECT_EQ(prune_snapshots(dir.path(), 0), 0u);  // keep-all is a no-op
  EXPECT_EQ(prune_snapshots(dir.path(), 4), 2u);
  EXPECT_FALSE(fs::exists(snapshot_path(dir.path(), 5)));
  EXPECT_FALSE(fs::exists(snapshot_path(dir.path(), 10)));
  for (const std::uint64_t kept : {15u, 20u, 25u, 30u})
    EXPECT_TRUE(fs::exists(snapshot_path(dir.path(), kept)));
  EXPECT_EQ(prune_snapshots(dir.path(), 4), 0u);  // already within budget
}

}  // namespace
}  // namespace dbs::svc
