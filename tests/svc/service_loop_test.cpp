// End-to-end service-core guarantees:
//
//   * service mode (ingest + ServiceLoop) is observably identical to the
//     one-shot replay paths on the same jobs;
//   * a concurrently-produced live run replays byte-identically from its
//     own WAL drain order, single-threaded;
//   * clean shutdown / reopen continues to the uninterrupted result;
//   * crash injection at EVERY decision index: recovery from any WAL
//     prefix (with or without snapshots, with or without a torn tail)
//     reconstructs ==-identical state and re-makes / continues the
//     decision stream byte-for-byte.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch_system.hpp"
#include "common/assert.hpp"
#include "metrics/report.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "svc/ingest.hpp"
#include "svc/service_loop.hpp"
#include "svc/state_store.hpp"
#include "workload/swf/swf_gen.hpp"
#include "workload/swf/swf_source.hpp"

namespace dbs::svc {
namespace {

namespace fs = std::filesystem;

batch::SystemConfig durable_config() {
  batch::SystemConfig cfg;
  cfg.cluster.node_count = 8;
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 4;
  cfg.latency = rms::LatencyModel::zero();
  cfg.streaming_metrics = true;
  cfg.retire_finished_jobs = true;
  return cfg;
}

wl::Workload make_workload(std::uint64_t jobs, std::uint64_t seed) {
  wl::swf::SwfGenParams gp;
  gp.jobs = jobs;
  gp.seed = seed;
  std::ostringstream out;
  wl::swf::generate_swf(out, gp);

  wl::swf::SwfSourceConfig scfg;
  scfg.overlay_dynamic_fraction = 0.3;
  std::istringstream in(out.str());
  wl::swf::SwfSource source(in, scfg);
  source.set_max_cores(8 * 8);

  wl::Workload workload;
  wl::SubmitSpec s;
  while (source.next(s)) workload.jobs.push_back(s);
  return workload;
}

ServiceConfig service_config(const std::string& state_dir,
                             std::uint64_t snapshot_every = 32,
                             std::size_t keep_snapshots = 0) {
  ServiceConfig scfg;
  scfg.state_dir = state_dir;
  scfg.snapshot_every = snapshot_every;
  scfg.keep_snapshots = keep_snapshots;
  scfg.tick = Duration::seconds(3600);
  return scfg;
}

struct ServiceResult {
  metrics::WorkloadSummary summary;
  bool recovered = false;
  std::uint64_t wal_ingest = 0;
  std::uint64_t wal_decisions = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t ticks = 0;
};

/// Runs `workload` through ingest + ServiceLoop to completion (or
/// max_ticks). With a state_dir, recovers first; the producer skips the
/// records the WAL already holds, exactly like a restarted trace feeder.
ServiceResult run_service(const wl::Workload& workload,
                          const ServiceConfig& scfg,
                          std::size_t producer_threads = 1) {
  IngestQueue ingest;
  batch::BatchSystem system(durable_config());
  ServiceLoop& service = system.attach_ingest(ingest, scfg);

  ServiceResult r;
  if (!scfg.state_dir.empty()) r.recovered = system.open_state();
  const std::uint64_t skip = service.wal_ingest_total();

  std::vector<std::thread> producers;
  std::atomic<std::size_t> live{producer_threads};
  if (producer_threads <= 1) {
    producers.emplace_back([&]() {
      std::uint64_t yielded = 0;
      for (const auto& s : workload.jobs) {
        if (++yielded <= skip) continue;
        ingest.submit(s.at, s.spec, s.behavior);
      }
      ingest.close();
    });
  } else {
    // Round-robin the workload across racing producers; close() once all
    // of them are done (multi-producer runs never resume, so skip == 0).
    EXPECT_EQ(skip, 0u);
    for (std::size_t t = 0; t < producer_threads; ++t) {
      producers.emplace_back([&, t]() {
        for (std::size_t i = t; i < workload.jobs.size();
             i += producer_threads) {
          const auto& s = workload.jobs[i];
          ingest.submit(s.at, s.spec, s.behavior);
        }
        if (live.fetch_sub(1) == 1) ingest.close();
      });
    }
  }

  system.run_service();
  for (auto& p : producers) p.join();

  r.summary = metrics::summarize(system.recorder());
  r.wal_ingest = service.wal_ingest_total();
  r.wal_decisions = service.wal_decision_total();
  r.snapshots = service.snapshots_written();
  r.ticks = service.ticks();
  return r;
}

void expect_summaries_equal(const metrics::WorkloadSummary& a,
                            const metrics::WorkloadSummary& b) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.evolving_jobs, b.evolving_jobs);
  EXPECT_EQ(a.satisfied_dyn_jobs, b.satisfied_dyn_jobs);
  EXPECT_EQ(a.granted_dyn_requests, b.granted_dyn_requests);
  EXPECT_EQ(a.backfilled_jobs, b.backfilled_jobs);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.max_wait, b.max_wait);
  EXPECT_EQ(a.avg_turnaround, b.avg_turnaround);
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("dbs_service_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] std::string path() const { return dir_.string(); }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

std::vector<std::vector<unsigned char>> decision_stream(
    const std::string& state_dir) {
  WalContents wal = read_wal(wal_path(state_dir));
  std::vector<std::vector<unsigned char>> out;
  out.reserve(wal.decisions.size());
  for (auto& d : wal.decisions) out.push_back(std::move(d.payload));
  return out;
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const unsigned char* data,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

/// Byte offsets just past each decision frame of a WAL file, in stream
/// order: offset i is where a crash "right after decision i became
/// durable" cuts the file.
std::vector<std::uint64_t> decision_frame_ends(const std::string& wal_file) {
  const std::vector<unsigned char> data = read_file(wal_file);
  std::vector<std::uint64_t> ends;
  std::size_t pos = kWalHeaderSize;
  while (pos + 5 <= data.size()) {
    const std::uint8_t type = data[pos];
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i)
      len |= static_cast<std::uint32_t>(data[pos + 1 + i]) << (8 * i);
    if (pos + 5 + len > data.size()) break;
    pos += 5 + len;
    if (type == kWalDecision) ends.push_back(pos);
  }
  return ends;
}

/// Builds a state directory as a crash at `wal_bytes` would leave it: the
/// baseline WAL cut to that many bytes, plus (optionally) every baseline
/// snapshot — recovery itself must discard the ones the shorter WAL can no
/// longer back.
void make_crash_dir(const std::string& base_dir, const std::string& out_dir,
                    std::uint64_t wal_bytes, bool with_snapshots) {
  fs::remove_all(out_dir);
  fs::create_directories(out_dir);
  const std::vector<unsigned char> wal = read_file(wal_path(base_dir));
  ASSERT_LE(wal_bytes, wal.size());
  write_file(wal_path(out_dir), wal.data(), wal_bytes);
  if (!with_snapshots) return;
  for (const auto& entry : fs::directory_iterator(base_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("snapshot-"))
      fs::copy_file(entry.path(), fs::path(out_dir) / name);
  }
}

/// Recovers a service from `state_dir` (open() only — nothing new fed) and
/// returns the reconstructed image plus the loop's recovery counters.
struct Recovered {
  SystemState state;
  Time last_admitted;
  std::uint64_t wal_ingest = 0;
  std::uint64_t wal_decisions = 0;
  bool recovered = false;
};

/// `align_to`: advance the recovered system to this instant before the
/// capture. Recovery parks the clock wherever its inputs end — at the
/// restored snapshot's drain boundary, or at the last re-made decision —
/// so two recoveries of the same WAL can sit a sub-tick apart; running the
/// earlier one forward (deterministic, no new inputs) makes the states
/// directly comparable.
Recovered recover_only(const std::string& state_dir, Time align_to = Time()) {
  IngestQueue ingest;
  batch::BatchSystem system(durable_config());
  ServiceLoop& service =
      system.attach_ingest(ingest, service_config(state_dir));
  Recovered r;
  r.recovered = system.open_state();
  if (align_to > system.simulator().now()) system.run_until(align_to);
  r.state = capture_state(system);
  r.last_admitted = service.last_admitted();
  r.wal_ingest = service.wal_ingest_total();
  r.wal_decisions = service.wal_decision_total();
  return r;
}

// --- service vs one-shot ----------------------------------------------------

std::string drop_lines(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(ServiceLoop, MatchesOneShotStreamingReplay) {
  const wl::Workload workload = make_workload(120, 5);

  // One-shot reference: the streaming replay path.
  batch::BatchSystem oneshot(durable_config());
  obs::Registry reg_a;
  std::ostringstream trace_a;
  obs::Tracer tracer_a;
  tracer_a.attach_stream(trace_a, obs::TraceFormat::Jsonl);
  oneshot.set_sinks({&tracer_a, &reg_a});
  oneshot.submit_workload(workload);
  oneshot.run();
  tracer_a.close();

  // Service mode on the same jobs, one producer thread, no durability.
  IngestQueue ingest;
  batch::BatchSystem served(durable_config());
  obs::Registry reg_b;
  std::ostringstream trace_b;
  obs::Tracer tracer_b;
  tracer_b.attach_stream(trace_b, obs::TraceFormat::Jsonl);
  served.set_sinks({&tracer_b, &reg_b});
  served.attach_ingest(ingest, service_config(""));
  std::thread producer([&]() {
    for (const auto& s : workload.jobs)
      ingest.submit(s.at, s.spec, s.behavior);
    ingest.close();
  });
  served.run_service();
  producer.join();
  tracer_b.close();

  expect_summaries_equal(metrics::summarize(served.recorder()),
                         metrics::summarize(oneshot.recorder()));
  EXPECT_EQ(drop_lines(trace_b.str(), "wall_us"),
            drop_lines(trace_a.str(), "wall_us"))
      << "service mode changed the decision/trace stream";
}

TEST(ServiceLoop, DurableModeRequiresZeroLatencyAndStreamingMetrics) {
  TempDir dir("preconditions");
  {
    batch::SystemConfig cfg = durable_config();
    cfg.latency = rms::LatencyModel{};  // defaults are non-zero
    IngestQueue ingest;
    batch::BatchSystem system(cfg);
    EXPECT_THROW(system.attach_ingest(ingest, service_config(dir.path())),
                 precondition_error);
  }
  {
    batch::SystemConfig cfg = durable_config();
    cfg.streaming_metrics = false;
    IngestQueue ingest;
    batch::BatchSystem system(cfg);
    EXPECT_THROW(system.attach_ingest(ingest, service_config(dir.path())),
                 precondition_error);
  }
}

// --- concurrent ingest differential -----------------------------------------

// The tentpole differential: a live run with racing producers, then a
// single-threaded replay of the drain order its own WAL recorded. Admission
// stamps and the whole decision stream must be byte-identical — the drained
// sequence, not the thread interleaving, defines the run.
TEST(ServiceLoop, ConcurrentIngestReplaysByteIdentical) {
  TempDir dir("concurrent_diff");
  const wl::Workload workload = make_workload(120, 7);

  const ServiceResult live =
      run_service(workload, service_config(dir.sub("live")), 4);
  EXPECT_EQ(live.summary.jobs_submitted, workload.jobs.size());
  EXPECT_EQ(live.summary.jobs_completed, workload.jobs.size());

  // Replay the drained sequence from the live WAL, one thread.
  const WalContents live_wal = read_wal(wal_path(dir.sub("live")));
  ASSERT_EQ(live_wal.ingest.size(), workload.jobs.size());
  wl::Workload drained;
  for (const IngestRecord& r : live_wal.ingest) {
    ASSERT_EQ(r.kind, IngestKind::Submit);
    wl::SubmitSpec s;
    s.at = r.requested;
    s.spec = r.spec;
    s.behavior = r.behavior;
    drained.jobs.push_back(std::move(s));
  }
  const ServiceResult replay =
      run_service(drained, service_config(dir.sub("replay")), 1);

  expect_summaries_equal(replay.summary, live.summary);
  const WalContents replay_wal = read_wal(wal_path(dir.sub("replay")));
  ASSERT_EQ(replay_wal.ingest.size(), live_wal.ingest.size());
  for (std::size_t i = 0; i < live_wal.ingest.size(); ++i) {
    // Admission is a pure function of the drained sequence: the replay
    // re-derives the exact stamps the racing producers got.
    EXPECT_EQ(replay_wal.ingest[i].admitted, live_wal.ingest[i].admitted)
        << "admission stamp diverged at record " << i;
    EXPECT_EQ(replay_wal.ingest[i].seq, live_wal.ingest[i].seq);
  }
  ASSERT_EQ(replay_wal.decisions.size(), live_wal.decisions.size());
  for (std::size_t i = 0; i < live_wal.decisions.size(); ++i)
    ASSERT_EQ(replay_wal.decisions[i].payload, live_wal.decisions[i].payload)
        << "decision " << i << " diverged";
}

// --- clean shutdown / reopen ------------------------------------------------

TEST(ServiceLoop, CleanShutdownAndReopenContinuesToTheSameResult) {
  TempDir dir("reopen");
  const wl::Workload workload = make_workload(80, 13);

  const ServiceResult baseline =
      run_service(workload, service_config(dir.sub("base")));
  ASSERT_EQ(baseline.summary.jobs_completed, workload.jobs.size());

  // First run: stop after a bounded number of drain cycles, mid-workload.
  ServiceConfig stopped = service_config(dir.sub("split"));
  stopped.max_ticks = 40;
  const ServiceResult first = run_service(workload, stopped);
  ASSERT_LT(first.wal_decisions, baseline.wal_decisions)
      << "max_ticks did not stop mid-run; shrink it";
  EXPECT_FALSE(first.recovered);

  // Second run: reopen the same directory and finish.
  const ServiceResult second =
      run_service(workload, service_config(dir.sub("split")));
  EXPECT_TRUE(second.recovered);
  expect_summaries_equal(second.summary, baseline.summary);
  EXPECT_EQ(second.wal_ingest, baseline.wal_ingest);
  EXPECT_EQ(second.wal_decisions, baseline.wal_decisions);

  const auto base_stream = decision_stream(dir.sub("base"));
  const auto split_stream = decision_stream(dir.sub("split"));
  ASSERT_EQ(split_stream.size(), base_stream.size());
  for (std::size_t i = 0; i < base_stream.size(); ++i)
    ASSERT_EQ(split_stream[i], base_stream[i])
        << "decision " << i << " diverged across the shutdown";
}

// --- crash injection --------------------------------------------------------

// For EVERY decision index k of a finished durable run, simulate a crash
// that made exactly k decisions durable: cut the WAL just past decision
// k-1's frame and hand recovery the full snapshot set (it must discard the
// now-unbacked ones). Recovery from that prefix WITH snapshots and from
// the same prefix WITHOUT any snapshot (pure re-execution from genesis —
// the ground truth) must reconstruct ==-identical SystemStates; open()
// itself byte-verifies every re-made decision against the log. A stride of
// cut points then runs on to completion and must land on the baseline's
// exact decision stream and summary.
TEST(ServiceLoop, CrashInjectionAtEveryDecisionIndex) {
  TempDir dir("crash");
  const wl::Workload workload = make_workload(16, 9);

  ServiceConfig base_cfg = service_config(dir.sub("base"),
                                          /*snapshot_every=*/24,
                                          /*keep_snapshots=*/0);
  const ServiceResult baseline = run_service(workload, base_cfg);
  ASSERT_EQ(baseline.summary.jobs_completed, workload.jobs.size());
  ASSERT_GT(baseline.snapshots, 2u) << "crash matrix needs mid-run snapshots";
  const auto base_stream = decision_stream(dir.sub("base"));
  ASSERT_EQ(base_stream.size(), baseline.wal_decisions);

  const std::vector<std::uint64_t> cuts =
      decision_frame_ends(wal_path(dir.sub("base")));
  ASSERT_EQ(cuts.size(), base_stream.size());
  GTEST_LOG_(INFO) << "crash matrix: " << cuts.size() << " decision cuts";

  const std::string snap_dir = dir.sub("cut_snap");
  const std::string nosnap_dir = dir.sub("cut_nosnap");
  for (std::size_t k = 0; k < cuts.size(); ++k) {
    make_crash_dir(dir.sub("base"), snap_dir, cuts[k], true);
    make_crash_dir(dir.sub("base"), nosnap_dir, cuts[k], false);

    const Recovered with_snap = recover_only(snap_dir);
    const Recovered pure = recover_only(nosnap_dir, with_snap.state.now);
    ASSERT_TRUE(with_snap.recovered);
    ASSERT_TRUE(pure.recovered);
    // A cut can land between two decisions of the same simulated instant;
    // recovery re-fires the instant atomically, so it may re-make (and
    // append) a few decisions past the cut — those must be the baseline's
    // own next decisions, byte for byte (checked below). Never fewer than
    // the log holds, and identical with or without snapshots.
    ASSERT_GE(with_snap.wal_decisions, k + 1);
    ASSERT_EQ(pure.wal_decisions, with_snap.wal_decisions);
    ASSERT_EQ(with_snap.wal_ingest, pure.wal_ingest);
    ASSERT_EQ(with_snap.last_admitted, pure.last_admitted);
    {
      // Compared per component so a divergence names the layer it is in.
      const SystemState& a = with_snap.state;
      const SystemState& b = pure.state;
      ASSERT_EQ(a.now, b.now) << "cut " << k;
      ASSERT_EQ(a.next_job, b.next_job) << "cut " << k;
      ASSERT_EQ(a.next_request, b.next_request) << "cut " << k;
      ASSERT_TRUE(a.jobs == b.jobs) << "server jobs diverged at cut " << k;
      ASSERT_TRUE(a.dyn_fifo == b.dyn_fifo) << "dyn FIFO diverged at cut " << k;
      ASSERT_TRUE(a.hints == b.hints) << "hints diverged at cut " << k;
      ASSERT_TRUE(a.node_states == b.node_states)
          << "cluster diverged at cut " << k;
      ASSERT_TRUE(a.moms == b.moms) << "moms diverged at cut " << k;
      ASSERT_TRUE(a.scheduler == b.scheduler)
          << "scheduler diverged at cut " << k;
      ASSERT_TRUE(a.metrics == b.metrics) << "metrics diverged at cut " << k;
      ASSERT_TRUE(a == b)
          << "snapshot recovery diverged from pure WAL re-execution at "
          << "decision " << k;
    }

    // Whatever recovery appended past the cut is the baseline's own
    // continuation.
    const auto recovered_stream = decision_stream(snap_dir);
    ASSERT_EQ(recovered_stream.size(), with_snap.wal_decisions);
    ASSERT_LE(recovered_stream.size(), base_stream.size());
    for (std::size_t i = 0; i < recovered_stream.size(); ++i)
      ASSERT_EQ(recovered_stream[i], base_stream[i])
          << "decision " << i << " diverged after recovering from cut " << k;
  }

  // A crash rarely lands on a frame boundary: cutting mid-frame must
  // recover exactly like the boundary before it.
  {
    const std::size_t k = cuts.size() / 2;
    make_crash_dir(dir.sub("base"), snap_dir, cuts[k], true);
    const Recovered at_boundary = recover_only(snap_dir);
    make_crash_dir(dir.sub("base"), nosnap_dir, cuts[k] + 3, true);
    const Recovered torn = recover_only(nosnap_dir, at_boundary.state.now);
    EXPECT_EQ(torn.wal_decisions, at_boundary.wal_decisions);
    EXPECT_TRUE(torn.state == at_boundary.state)
        << "a torn tail changed the recovered image";
  }

  // Continue to completion from a stride of cut points (plus the first and
  // last): the re-fed producer skips what the WAL holds, and the final
  // decision stream must be byte-for-byte the baseline's.
  std::vector<std::size_t> continue_at{0, cuts.size() - 1};
  for (std::size_t k = 7; k + 1 < cuts.size(); k += 11)
    continue_at.push_back(k);
  for (const std::size_t k : continue_at) {
    make_crash_dir(dir.sub("base"), snap_dir, cuts[k], true);
    const ServiceResult resumed =
        run_service(workload, service_config(snap_dir, 24, 0));
    EXPECT_TRUE(resumed.recovered);
    expect_summaries_equal(resumed.summary, baseline.summary);
    ASSERT_EQ(resumed.wal_decisions, baseline.wal_decisions)
        << "resume from decision " << k;
    const auto resumed_stream = decision_stream(snap_dir);
    ASSERT_EQ(resumed_stream.size(), base_stream.size());
    for (std::size_t i = 0; i < base_stream.size(); ++i)
      ASSERT_EQ(resumed_stream[i], base_stream[i])
          << "decision " << i << " diverged after resuming from cut " << k;
  }
}

// --- snapshot cadence -------------------------------------------------------

TEST(ServiceLoop, SnapshotCadenceAndPruning) {
  TempDir dir("cadence");
  const wl::Workload workload = make_workload(60, 21);

  ServiceConfig scfg = service_config(dir.sub("state"),
                                      /*snapshot_every=*/16,
                                      /*keep_snapshots=*/2);
  const ServiceResult result = run_service(workload, scfg);
  EXPECT_EQ(result.summary.jobs_completed, workload.jobs.size());
  EXPECT_GT(result.snapshots, 2u);

  std::size_t snapshot_files = 0;
  bool has_wal = false;
  for (const auto& entry : fs::directory_iterator(dir.sub("state"))) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("snapshot-")) ++snapshot_files;
    if (name == "wal.dbsw") has_wal = true;
  }
  EXPECT_TRUE(has_wal);
  EXPECT_LE(snapshot_files, 2u);
  EXPECT_GE(snapshot_files, 1u);

  // The pruned directory still recovers (the final snapshot survives).
  const Recovered again = recover_only(dir.sub("state"));
  EXPECT_TRUE(again.recovered);
  EXPECT_EQ(again.wal_decisions, result.wal_decisions);
}

TEST(ServiceLoop, ColdStartRecoversNothing) {
  TempDir dir("cold");
  const Recovered cold = recover_only(dir.sub("fresh"));
  EXPECT_FALSE(cold.recovered);
  EXPECT_EQ(cold.wal_ingest, 0u);
  EXPECT_EQ(cold.wal_decisions, 0u);
}

}  // namespace
}  // namespace dbs::svc
