// Shared helpers for the test suites.
#pragma once

#include <memory>

#include "apps/app_model.hpp"
#include "apps/rigid.hpp"
#include "cluster/cluster.hpp"
#include "rms/mom.hpp"
#include "rms/server.hpp"
#include "sim/simulator.hpp"

namespace dbs::test {

/// A server + moms + cluster without any scheduler: tests drive grants and
/// starts by hand and observe the protocol directly.
struct BareSystem {
  explicit BareSystem(std::size_t nodes = 4, CoreCount cores_per_node = 8,
                      rms::LatencyModel latency = rms::LatencyModel{})
      : cluster(cluster::ClusterSpec{nodes, cores_per_node}),
        server(sim, cluster, latency),
        moms(sim, server, latency) {
    server.set_moms(&moms);
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  rms::Server server;
  rms::MomManager moms;
};

inline rms::JobSpec spec(std::string name, CoreCount cores, Duration walltime,
                         std::string user = "alice") {
  rms::JobSpec s;
  s.name = std::move(name);
  s.cred = {std::move(user), "grp", "", "batch", ""};
  s.cores = cores;
  s.walltime = walltime;
  return s;
}

inline std::unique_ptr<rms::Application> rigid(Duration runtime) {
  return std::make_unique<apps::RigidApp>(runtime);
}

}  // namespace dbs::test
