#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace dbs::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<Time> at;
  sim.schedule_at(Time::from_seconds(5), [&] { at.push_back(sim.now()); });
  sim.schedule_at(Time::from_seconds(2), [&] { at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], Time::from_seconds(2));
  EXPECT_EQ(at[1], Time::from_seconds(5));
  EXPECT_EQ(sim.now(), Time::from_seconds(5));
  EXPECT_EQ(sim.events_fired(), 2u);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time observed;
  sim.schedule_at(Time::from_seconds(10), [&] {
    sim.schedule_after(Duration::seconds(5), [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, Time::from_seconds(15));
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.schedule_at(Time::from_seconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Time::from_seconds(5), [] {}),
               precondition_error);
  EXPECT_THROW(sim.schedule_after(Duration::seconds(-1), [] {}),
               precondition_error);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  for (int s = 1; s <= 10; ++s)
    sim.schedule_at(Time::from_seconds(s), [&] { ++fired; });
  sim.run_until(Time::from_seconds(5));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), Time::from_seconds(5));
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(Time::from_seconds(100));
  EXPECT_EQ(sim.now(), Time::from_seconds(100));
}

TEST(Simulator, CancelStopsEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(Duration::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(Duration::seconds(1), chain);
  };
  sim.schedule_at(Time::epoch(), chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), Time::from_seconds(4));
}

TEST(Simulator, StepFiresOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::from_seconds(1), [&] { ++fired; });
  sim.schedule_at(Time::from_seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace dbs::sim
