#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace dbs::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time::from_seconds(2), [&] { fired.push_back(2); });
  q.push(Time::from_seconds(1), [&] { fired.push_back(1); });
  q.push(Time::from_seconds(3), [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.push(Time::from_seconds(5), [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(Time::from_seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(Time::from_seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId::invalid()));
  EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time::from_seconds(1), [&] { fired.push_back(1); });
  const EventId mid = q.push(Time::from_seconds(2), [&] { fired.push_back(2); });
  q.push(Time::from_seconds(3), [&] { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(mid));
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId first = q.push(Time::from_seconds(1), [] {});
  q.push(Time::from_seconds(2), [] {});
  q.cancel(first);
  EXPECT_EQ(q.next_time(), Time::from_seconds(2));
}

TEST(EventQueue, EmptyQueueGuards) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.next_time(), precondition_error);
  EXPECT_THROW((void)q.pop(), precondition_error);
}

TEST(EventQueue, NullEventRejected) {
  EventQueue q;
  EXPECT_THROW(q.push(Time::epoch(), nullptr), precondition_error);
}

}  // namespace
}  // namespace dbs::sim
