#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace dbs::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time::from_seconds(2), [&] { fired.push_back(2); });
  q.push(Time::from_seconds(1), [&] { fired.push_back(1); });
  q.push(Time::from_seconds(3), [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.push(Time::from_seconds(5), [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(Time::from_seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(Time::from_seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId::invalid()));
  EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time::from_seconds(1), [&] { fired.push_back(1); });
  const EventId mid = q.push(Time::from_seconds(2), [&] { fired.push_back(2); });
  q.push(Time::from_seconds(3), [&] { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(mid));
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId first = q.push(Time::from_seconds(1), [] {});
  q.push(Time::from_seconds(2), [] {});
  q.cancel(first);
  EXPECT_EQ(q.next_time(), Time::from_seconds(2));
}

TEST(EventQueue, EmptyQueueGuards) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.next_time(), precondition_error);
  EXPECT_THROW((void)q.pop(), precondition_error);
}

TEST(EventQueue, NullEventRejected) {
  EventQueue q;
  EXPECT_THROW(q.push(Time::epoch(), nullptr), precondition_error);
}

TEST(EventQueue, SizeIsExactWithInteriorTombstones) {
  EventQueue q;
  q.push(Time::from_seconds(1), [] {});
  const EventId mid = q.push(Time::from_seconds(2), [] {});
  q.push(Time::from_seconds(3), [] {});
  EXPECT_EQ(q.size(), 3u);
  // Cancelling an interior event leaves a tombstone in the heap, but
  // size() counts live entries only.
  EXPECT_TRUE(q.cancel(mid));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId id = q.push(Time::from_seconds(1), [] {});
  (void)q.pop();
  // A fired id is no longer cancellable — and retrying must not grow the
  // internal tombstone set (it would leak if fired ids were recorded).
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SubmissionLaneFiresFirstAtEqualTime) {
  EventQueue q;
  std::vector<int> fired;
  // Normal-lane events pushed first, submission-lane last: the lane, not
  // the push order, decides the tie.
  q.push(Time::from_seconds(5), [&] { fired.push_back(1); });
  q.push(Time::from_seconds(5), [&] { fired.push_back(2); });
  q.push(Time::from_seconds(5), [&] { fired.push_back(0); },
         Lane::Submission);
  // An earlier normal event still beats a later submission event.
  q.push(Time::from_seconds(4), [&] { fired.push_back(-1); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(EventQueue, SubmissionLaneIsFifoWithinItself) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    q.push(Time::from_seconds(1), [&fired, i] { fired.push_back(i); },
           Lane::Submission);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CompactionShedsTombstones) {
  EventQueue q;
  std::vector<EventId> ids;
  // Big enough to clear the compaction floor, with one survivor.
  constexpr int kEvents = 200;
  std::vector<int> fired;
  for (int i = 0; i < kEvents; ++i)
    ids.push_back(
        q.push(Time::from_seconds(i + 1), [&fired, i] { fired.push_back(i); }));
  // Cancel all but the last: once tombstones pass 50% of the heap the
  // queue must rebuild and drop them without waiting for pops.
  for (int i = 0; i < kEvents - 1; ++i) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_GE(q.compactions(), 1u);
  // Compaction is amortized: tombstones may linger below the rebuild
  // floor, but never anywhere near the 199 cancelled here.
  EXPECT_LT(q.cancelled_count(), 64u);
  EXPECT_EQ(q.size(), 1u);
  // The surviving event still fires, exactly once, in order.
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{kEvents - 1}));
}

TEST(EventQueue, CompactionPreservesOrderingAndPending) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> evens;
  constexpr int kEvents = 256;
  for (int i = 0; i < kEvents; ++i) {
    // Interleaved times so the heap is well mixed before the rebuild.
    const EventId id = q.push(Time::from_seconds((i * 7919) % 1000 + 1),
                              [&fired, i] { fired.push_back(i); });
    // Evens plus one odd: a strict majority, so the rebuild must trigger.
    if (i % 2 == 0 || i == 1) evens.push_back(id);
  }
  for (const EventId id : evens) EXPECT_TRUE(q.cancel(id));
  EXPECT_GE(q.compactions(), 1u);
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kEvents / 2 - 1));
  std::vector<int> expect;
  for (int i = 3; i < kEvents; i += 2) expect.push_back(i);
  std::sort(expect.begin(), expect.end(), [](int a, int b) {
    const int ta = (a * 7919) % 1000;
    const int tb = (b * 7919) % 1000;
    if (ta != tb) return ta < tb;
    return a < b;  // FIFO at equal times == id order here
  });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, expect);
}

TEST(EventQueue, CancelledCountTracksTombstones) {
  EventQueue q;
  const EventId a = q.push(Time::from_seconds(1), [] {});
  q.push(Time::from_seconds(2), [] {});
  EXPECT_EQ(q.cancelled_count(), 0u);
  q.cancel(a);
  EXPECT_EQ(q.cancelled_count(), 1u);
  // Popping past the tombstone reclaims it.
  (void)q.pop();
  EXPECT_EQ(q.cancelled_count(), 0u);
}

TEST(EventQueue, EmptyTrueWithOnlyTombstonesLeft) {
  EventQueue q;
  const EventId a = q.push(Time::from_seconds(1), [] {});
  const EventId b = q.push(Time::from_seconds(2), [] {});
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
  // The heap still physically holds both entries, but the queue is
  // logically empty — without draining pops.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace dbs::sim
