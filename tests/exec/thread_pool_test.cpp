#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace dbs::exec {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i, std::size_t worker) {
    ASSERT_LT(worker, 4u);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksReturnsWithoutCallingBody) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelMapReturnsInIndexOrder) {
  ThreadPool pool(4);
  const std::vector<int> squares =
      pool.parallel_map<int>(16, [](std::size_t i, std::size_t) {
        return static_cast<int>(i * i);
      });
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
}

TEST(ThreadPool, LowestIndexExceptionWinsAndAllTasksStillRun) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  try {
    pool.parallel_for(kTasks, [&](std::size_t i, std::size_t) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      if (i == 7 || i == 40) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
  // Remaining tasks ran to completion before the rethrow.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesFromSingleThreadInlinePath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(3,
                                 [&](std::size_t i, std::size_t) {
                                   if (i == 1) throw std::logic_error("boom");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t outer_worker) {
    // A classic fork-join pool would deadlock here; ours detects the
    // nesting and serializes the inner region on the same worker slot.
    pool.parallel_for(4, [&](std::size_t, std::size_t inner_worker) {
      EXPECT_EQ(inner_worker, outer_worker);
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, DistinctPoolsNestWithoutInterference) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.parallel_for(4, [&](std::size_t, std::size_t) {
    inner.parallel_for(4, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, TasksActuallyRunConcurrently) {
  using namespace std::chrono;
  ThreadPool pool(4);
  const auto begin = steady_clock::now();
  pool.parallel_for(4, [](std::size_t, std::size_t) {
    std::this_thread::sleep_for(milliseconds(100));
  });
  const auto elapsed = duration_cast<milliseconds>(steady_clock::now() - begin);
  // Serial execution would take >= 400ms; allow generous scheduling slack.
  EXPECT_LT(elapsed.count(), 350);
}

TEST(ThreadPool, RejectsZeroThreadsAndNullBody) {
  EXPECT_THROW(ThreadPool(0), precondition_error);
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(1, nullptr), precondition_error);
}

TEST(ThreadPool, GrainRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 1000;
  // Grains that don't divide n, exceed n, and equal 1 all cover [0, n).
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallel_for(
        kTasks,
        [&](std::size_t i, std::size_t) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPool, GrainChunksRunInIndexOrderWithinAChunk) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 256;
  constexpr std::size_t kGrain = 16;
  // Record the order per worker: within one chunk of 16 the indices must
  // be consecutive and increasing (chunks themselves may interleave across
  // workers in any order).
  std::vector<std::vector<std::size_t>> per_worker(pool.worker_count());
  std::mutex m;
  pool.parallel_for(
      kTasks,
      [&](std::size_t i, std::size_t worker) {
        std::lock_guard<std::mutex> lock(m);
        per_worker[worker].push_back(i);
      },
      kGrain);
  for (const auto& seq : per_worker)
    for (std::size_t j = 1; j < seq.size(); ++j)
      if (seq[j] % kGrain != 0)  // same chunk as the previous index
        EXPECT_EQ(seq[j], seq[j - 1] + 1);
}

TEST(ThreadPool, GrainKeepsLowestIndexExceptionSemantics) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  try {
    pool.parallel_for(
        kTasks,
        [&](std::size_t i, std::size_t) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
          if (i == 7 || i == 40)
            throw std::runtime_error("task " + std::to_string(i));
        },
        8);
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RejectsZeroGrain) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t, std::size_t) {}, 0),
      precondition_error);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(3);
  std::size_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i, std::size_t) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 50u * 45u);
}

}  // namespace
}  // namespace dbs::exec
