// The parallel execution layer's central guarantee: thread count is a pure
// performance knob. Multi-replication runs (batch::ParallelRunner) and the
// scheduler's internal what-if fan-out (measure_threads) must produce
// results byte-identical to their serial counterparts.
//
// Host-time exemption: the `scheduler.iteration_us` histogram and the
// `wall_us` field of "iteration" trace events record real wall-clock time
// and are never deterministic, serial or not. Comparisons below drop
// exactly those lines; everything else must match byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "batch/esp_experiment.hpp"
#include "batch/parallel_runner.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "workload/synthetic.hpp"

namespace dbs::batch {
namespace {

/// Drops every line containing `needle` (the host-time metrics/fields).
std::string drop_lines(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

void expect_same_results(const std::vector<RunResult>& a,
                         const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].label);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].summary.jobs_completed, b[i].summary.jobs_completed);
    EXPECT_EQ(a[i].summary.satisfied_dyn_jobs, b[i].summary.satisfied_dyn_jobs);
    EXPECT_EQ(a[i].summary.granted_dyn_requests,
              b[i].summary.granted_dyn_requests);
    EXPECT_EQ(a[i].summary.backfilled_jobs, b[i].summary.backfilled_jobs);
    EXPECT_EQ(a[i].summary.makespan, b[i].summary.makespan);
    EXPECT_EQ(a[i].summary.avg_wait, b[i].summary.avg_wait);
    EXPECT_EQ(a[i].summary.max_wait, b[i].summary.max_wait);
    EXPECT_EQ(a[i].scheduler_iterations, b[i].scheduler_iterations);
    EXPECT_EQ(a[i].events, b[i].events);
    ASSERT_EQ(a[i].waits.size(), b[i].waits.size());
    for (std::size_t j = 0; j < a[i].waits.size(); ++j)
      EXPECT_EQ(a[i].waits[j].wait, b[i].waits[j].wait);
  }
}

TEST(ParallelRunner, FourJobsMatchSerialByteForByte) {
  const EspExperimentParams params;
  obs::Registry serial_registry;
  obs::Registry parallel_registry;
  const std::vector<RunResult> serial = run_esp_all(params, 1, &serial_registry);
  const std::vector<RunResult> parallel =
      run_esp_all(params, 4, &parallel_registry);

  expect_same_results(serial, parallel);
  EXPECT_EQ(drop_lines(serial_registry.to_json(), "iteration_us"),
            drop_lines(parallel_registry.to_json(), "iteration_us"));
}

TEST(ParallelRunner, MatchesLegacySerialPathAndTableTwoCounts) {
  const EspExperimentParams params;
  const std::vector<RunResult> legacy = run_esp_all(params);
  obs::Registry registry;
  const std::vector<RunResult> parallel = run_esp_all(params, 4, &registry);
  expect_same_results(legacy, parallel);

  // Table II strict "satisfied" counts (jobs whose every dynamic request
  // was granted), as documented in EXPERIMENTS.md.
  ASSERT_EQ(parallel.size(), 4u);
  EXPECT_EQ(parallel[0].summary.satisfied_dyn_jobs, 0u);   // Static
  EXPECT_EQ(parallel[1].summary.satisfied_dyn_jobs, 28u);  // Dyn-HP
  EXPECT_EQ(parallel[2].summary.satisfied_dyn_jobs, 14u);  // Dyn-500
  EXPECT_EQ(parallel[3].summary.satisfied_dyn_jobs, 10u);  // Dyn-600
}

TEST(ParallelRunner, SeedSweepIsThreadCountInvariant) {
  // Replication seeds derive from the replication index alone, so the
  // sweep's per-replication workloads (and results) cannot depend on which
  // worker ran them.
  const auto sweep = [](std::size_t jobs, obs::Registry* registry) {
    ParallelRunner runner(jobs);
    return runner.map<RunResult>(
        6,
        [](std::size_t index, obs::Registry& replication_registry) {
          EspExperimentParams params;
          params.workload.seed = replication_seed(2014, index);
          return run_esp(params, EspConfig::Dyn600, &replication_registry);
        },
        registry);
  };
  obs::Registry serial_registry;
  obs::Registry parallel_registry;
  const std::vector<RunResult> serial = sweep(1, &serial_registry);
  const std::vector<RunResult> parallel = sweep(3, &parallel_registry);
  expect_same_results(serial, parallel);
  EXPECT_EQ(drop_lines(serial_registry.to_json(), "iteration_us"),
            drop_lines(parallel_registry.to_json(), "iteration_us"));
  // Different seeds must actually produce different runs (the sweep is not
  // six copies of one experiment).
  bool any_difference = false;
  for (std::size_t i = 1; i < serial.size(); ++i)
    any_difference |= serial[i].summary.avg_wait != serial[0].summary.avg_wait;
  EXPECT_TRUE(any_difference);
}

/// Runs an evolving-heavy synthetic workload with the given scheduler
/// fan-out width; returns the metrics JSON and the full event trace.
struct MeasureRun {
  std::string metrics;
  std::string trace;
  std::size_t satisfied = 0;
};

MeasureRun run_with_measure_threads(std::size_t measure_threads) {
  wl::SyntheticParams wp;
  wp.job_count = 200;
  wp.total_cores = 128;
  wp.evolving_fraction = 0.5;
  wp.seed = 9;
  SystemConfig cfg;
  cfg.cluster.node_count = 16;
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 5;
  cfg.scheduler.reservation_delay_depth = 5;
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::seconds(600);
  cfg.scheduler.measure_threads = measure_threads;

  BatchSystem system(cfg);
  obs::Registry registry;
  std::ostringstream trace_stream;
  obs::Tracer tracer;
  tracer.attach_stream(trace_stream, obs::TraceFormat::Jsonl);
  system.set_sinks({&tracer, &registry});
  system.submit_workload(wl::generate_synthetic(wp));
  system.run();
  tracer.close();

  MeasureRun out;
  out.metrics = registry.to_json();
  out.trace = trace_stream.str();
  out.satisfied = metrics::summarize(system.recorder()).satisfied_dyn_jobs;
  return out;
}

TEST(MeasureThreads, FourThreadsMatchSerialByteForByte) {
  const MeasureRun serial = run_with_measure_threads(1);
  const MeasureRun parallel = run_with_measure_threads(4);

  EXPECT_EQ(serial.satisfied, parallel.satisfied);
  EXPECT_GT(serial.satisfied, 0u);
  // Metrics: identical except the host-time iteration_us histogram.
  EXPECT_EQ(drop_lines(serial.metrics, "iteration_us"),
            drop_lines(parallel.metrics, "iteration_us"));
  // Trace: every event byte-identical — including each per-request
  // "measure" event (replayed in FIFO order from the speculative results)
  // and every dyn_grant/dyn_reject/dyn_defer decision — except the
  // "iteration" events' wall_us field.
  const std::string serial_events = drop_lines(serial.trace, "wall_us");
  const std::string parallel_events = drop_lines(parallel.trace, "wall_us");
  EXPECT_EQ(serial_events, parallel_events);
  // Sanity: the comparison actually covers measurement + decision events.
  EXPECT_NE(serial_events.find("\"measure\""), std::string::npos);
  EXPECT_NE(serial_events.find("dyn_grant"), std::string::npos);
  EXPECT_NE(serial_events.find("dyn_reject"), std::string::npos);
}

TEST(MeasureThreads, OddThreadCountAlsoMatches) {
  const MeasureRun serial = run_with_measure_threads(1);
  const MeasureRun parallel = run_with_measure_threads(3);
  EXPECT_EQ(drop_lines(serial.metrics, "iteration_us"),
            drop_lines(parallel.metrics, "iteration_us"));
  EXPECT_EQ(drop_lines(serial.trace, "wall_us"),
            drop_lines(parallel.trace, "wall_us"));
}

TEST(ReplicationSeed, StableAndWellSpread) {
  // The derivation depends only on (base, index): same inputs, same seed.
  EXPECT_EQ(replication_seed(2014, 3), replication_seed(2014, 3));
  // Adjacent indices and bases give distinct, unrelated seeds.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t base : {1ULL, 2ULL, 2014ULL})
    for (std::uint64_t index = 0; index < 8; ++index)
      seeds.push_back(replication_seed(base, index));
  for (std::size_t i = 0; i < seeds.size(); ++i)
    for (std::size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_NE(seeds[i], seeds[j]) << "collision at " << i << "," << j;
}

}  // namespace
}  // namespace dbs::batch
