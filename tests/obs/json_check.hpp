// A minimal recursive-descent JSON validity checker for the trace/metrics
// tests: no DOM, no dependencies, just "is this RFC 8259 JSON?" plus a
// duplicate-top-level-key check (a duplicated key silently shadows a field
// in every real parser, so the tracer must never produce one).
#pragma once

#include <cctype>
#include <set>
#include <string>
#include <string_view>

namespace dbs::test::json {

class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  /// Whole input is exactly one valid JSON value (plus whitespace).
  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    std::set<std::string> keys;
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      const std::size_t key_begin = pos_;
      if (!string()) return false;
      // Reject duplicate keys within one object.
      if (!keys.insert(std::string(text_.substr(key_begin,
                                                pos_ - key_begin))).second)
        return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0)
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > begin;
  }

  bool digits() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
    return pos_ > begin;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline bool is_valid(std::string_view text) { return Checker(text).valid(); }

}  // namespace dbs::test::json
