#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/json.hpp"

namespace dbs::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

TEST(JsonQuote, EscapesSpecialsAndControls) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonNumber, IntegersStayIntegral) {
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(0.5), "0.5");
  // Non-finite values cannot appear in JSON.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(TraceFormatParse, AcceptsKnownNames) {
  TraceFormat f = TraceFormat::Chrome;
  EXPECT_TRUE(parse_trace_format("jsonl", f));
  EXPECT_EQ(f, TraceFormat::Jsonl);
  EXPECT_TRUE(parse_trace_format("chrome", f));
  EXPECT_EQ(f, TraceFormat::Chrome);
  EXPECT_FALSE(parse_trace_format("xml", f));
}

TEST(Tracer, DisabledWithoutSink) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  // emit without a sink is a harmless no-op.
  t.emit(TraceEvent(Time::epoch(), "sched", "noop"));
  EXPECT_EQ(t.events_emitted(), 0u);
}

TEST(Tracer, MacroSkipsEventConstructionWhenDetached) {
  int evaluations = 0;
  const auto make_name = [&] {
    ++evaluations;
    return std::string("ev");
  };
  Tracer detached;
  DBS_TRACE_EVENT(&detached,
                  TraceEvent(Time::epoch(), "sched", make_name()));
  EXPECT_EQ(evaluations, 0);
  DBS_TRACE_EVENT(nullptr, TraceEvent(Time::epoch(), "sched", make_name()));
  EXPECT_EQ(evaluations, 0);

  std::ostringstream os;
  Tracer attached;
  attached.attach_stream(os, TraceFormat::Jsonl);
  DBS_TRACE_EVENT(&attached,
                  TraceEvent(Time::epoch(), "sched", make_name()));
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(attached.events_emitted(), 1u);
}

TEST(Tracer, JsonlEveryLineIsValidJson) {
  std::ostringstream os;
  Tracer t;
  t.attach_stream(os, TraceFormat::Jsonl);
  t.emit(TraceEvent(Time::from_seconds(1), "sched", "iteration")
             .field("n", 3)
             .field("wall_us", 12.5)
             .field("drain", false)
             .field("user", "al\"ice")
             .field_json("delays", "[{\"job\": 1, \"delay_s\": 2.5}]"));
  t.emit(TraceEvent(Time::from_seconds(2), "rms", "span")
             .duration(Duration::seconds(3)));
  t.close();

  const std::vector<std::string> lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines)
    EXPECT_TRUE(test::json::is_valid(line)) << line;
  EXPECT_NE(lines[0].find("\"t_us\": 1000000"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cat\": \"sched\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\": \"iteration\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"delays\": [{\"job\": 1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"dur_us\": 3000000"), std::string::npos);
}

TEST(Tracer, ChromeOutputIsOneValidJsonDocument) {
  std::ostringstream os;
  Tracer t;
  t.attach_stream(os, TraceFormat::Chrome);
  t.emit(TraceEvent(Time::from_seconds(1), "sched", "instant")
             .field("job", 7));
  t.emit(TraceEvent(Time::from_seconds(2), "sched", "span")
             .duration(Duration::millis(50)));
  t.close();

  const std::string doc = os.str();
  EXPECT_TRUE(test::json::is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\": ["), std::string::npos);
  // Instant events carry phase "i" + scope, spans phase "X" + dur.
  EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"s\": \"g\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\": 50000"), std::string::npos);
}

TEST(Tracer, ChromeEmptyTraceStillValid) {
  // close() without events: header was never written, nothing to finalize.
  std::ostringstream os;
  Tracer t;
  t.attach_stream(os, TraceFormat::Chrome);
  t.close();
  EXPECT_TRUE(os.str().empty());
}

TEST(Tracer, ClockDefaultsToEpochUntilWired) {
  Tracer t;
  EXPECT_EQ(t.now(), Time::epoch());
  Time current = Time::from_seconds(90);
  t.set_clock([&current] { return current; });
  EXPECT_EQ(t.now(), Time::from_seconds(90));
  current = Time::from_seconds(120);
  EXPECT_EQ(t.now(), Time::from_seconds(120));
}

TEST(Tracer, OpenWritesFileAndCloseFinalizes) {
  const std::string path = ::testing::TempDir() + "dbs_tracer_test.jsonl";
  Tracer t;
  ASSERT_TRUE(t.open(path, TraceFormat::Jsonl));
  EXPECT_TRUE(t.enabled());
  t.emit(TraceEvent(Time::epoch(), "sched", "e"));
  t.close();
  EXPECT_FALSE(t.enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(test::json::is_valid(line)) << line;
  std::remove(path.c_str());
}

TEST(Tracer, OpenFailsOnBadPath) {
  Tracer t;
  EXPECT_FALSE(t.open("/nonexistent-dir-zzz/x.jsonl", TraceFormat::Jsonl));
  EXPECT_FALSE(t.enabled());
}

}  // namespace
}  // namespace dbs::obs
