#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "json_check.hpp"

namespace dbs::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Registry reg;
  Counter& c = reg.counter("a.b");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("a.b"), &c);
  EXPECT_EQ(reg.counter("a.b").value(), 42u);
}

TEST(Gauge, KeepsLastValue) {
  Registry reg;
  reg.gauge("queue").set(3.0);
  reg.gauge("queue").set(7.5);
  EXPECT_DOUBLE_EQ(reg.gauge("queue").value(), 7.5);
}

TEST(Histogram, BucketsDisjointWithInfOverflow) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (le 1)
  h.observe(1.0);    // bucket 0 (le is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // +inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, BoundsFixedByFirstRegistration) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  // A second registration with different bounds returns the original.
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

TEST(Registry, FindDoesNotCreate) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  reg.counter("yes").add();
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
}

TEST(Registry, JsonSnapshotIsValidAndComplete) {
  Registry reg;
  reg.counter("sched.iterations").add(3);
  reg.gauge("free_cores").set(12);
  reg.histogram("wait_s", {1.0, 60.0}).observe(30.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(test::json::is_valid(json)) << json;
  EXPECT_NE(json.find("\"sched.iterations\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"free_cores\": 12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wait_s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"+inf\""), std::string::npos) << json;
  // write_json streams the identical snapshot.
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_EQ(os.str(), json);
}

TEST(Registry, EmptySnapshotIsValidJson) {
  Registry reg;
  EXPECT_TRUE(test::json::is_valid(reg.to_json())) << reg.to_json();
}

TEST(Registry, ResetDropsEverything) {
  Registry reg;
  reg.counter("c").add(5);
  reg.reset();
  EXPECT_EQ(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.counter("c").value(), 0u);
}

TEST(Registry, GlobalIsAStableSingleton) {
  Registry& g1 = Registry::global();
  Registry& g2 = Registry::global();
  EXPECT_EQ(&g1, &g2);
}

}  // namespace
}  // namespace dbs::obs
