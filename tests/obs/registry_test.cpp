#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "json_check.hpp"

namespace dbs::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Registry reg;
  Counter& c = reg.counter("a.b");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("a.b"), &c);
  EXPECT_EQ(reg.counter("a.b").value(), 42u);
}

TEST(Gauge, KeepsLastValue) {
  Registry reg;
  reg.gauge("queue").set(3.0);
  reg.gauge("queue").set(7.5);
  EXPECT_DOUBLE_EQ(reg.gauge("queue").value(), 7.5);
}

TEST(Histogram, BucketsDisjointWithInfOverflow) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (le 1)
  h.observe(1.0);    // bucket 0 (le is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // +inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, BoundsFixedByFirstRegistration) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  // A second registration with different bounds returns the original.
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  // 100 uniform samples in (0, 100]: one per unit, bounds every 10.
  const std::vector<double> bounds = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  std::vector<std::uint64_t> counts(bounds.size() + 1, 0);
  for (std::size_t i = 0; i < bounds.size(); ++i) counts[i] = 10;
  // Rank q*100 lands at the (q*100)th sample; interpolation inside a
  // 10-wide bucket reproduces the rank itself.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 1.0), 100.0);
  // The lowest rank interpolates inside the first bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.0), 1.0);
}

TEST(Histogram, QuantileEdgeCases) {
  const std::vector<double> bounds = {1.0, 10.0};
  // Empty distribution reports 0.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, {0, 0, 0}, 0.5), 0.0);
  // Everything in the +inf bucket clamps to the largest finite bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, {0, 0, 7}, 0.5), 10.0);
  // A single observation lands in its bucket regardless of q.
  EXPECT_LE(histogram_quantile(bounds, {1, 0, 0}, 0.99), 1.0);
  EXPECT_GT(histogram_quantile(bounds, {1, 0, 0}, 0.01), 0.0);
}

TEST(Histogram, JsonSnapshotCarriesQuantiles) {
  Registry reg;
  Histogram& h = reg.histogram("lat_us", {1.0, 10.0, 100.0, 1000.0});
  for (int i = 0; i < 95; ++i) h.observe(5.0);   // bulk in (1, 10]
  for (int i = 0; i < 5; ++i) h.observe(500.0);  // tail in (100, 1000]
  const std::string json = reg.to_json();
  EXPECT_TRUE(test::json::is_valid(json)) << json;
  EXPECT_NE(json.find("\"p50\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": "), std::string::npos) << json;

  const double p50 =
      histogram_quantile(h.upper_bounds(), h.bucket_counts(), 0.5);
  const double p99 =
      histogram_quantile(h.upper_bounds(), h.bucket_counts(), 0.99);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_GT(p99, 100.0);  // the tail pulls p99 into the (100, 1000] bucket
  EXPECT_LE(p99, 1000.0);
}

TEST(Registry, FindDoesNotCreate) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  reg.counter("yes").add();
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
}

TEST(Registry, JsonSnapshotIsValidAndComplete) {
  Registry reg;
  reg.counter("sched.iterations").add(3);
  reg.gauge("free_cores").set(12);
  reg.histogram("wait_s", {1.0, 60.0}).observe(30.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(test::json::is_valid(json)) << json;
  EXPECT_NE(json.find("\"sched.iterations\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"free_cores\": 12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wait_s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"+inf\""), std::string::npos) << json;
  // write_json streams the identical snapshot.
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_EQ(os.str(), json);
}

TEST(Registry, EmptySnapshotIsValidJson) {
  Registry reg;
  EXPECT_TRUE(test::json::is_valid(reg.to_json())) << reg.to_json();
}

TEST(Registry, ResetDropsEverything) {
  Registry reg;
  reg.counter("c").add(5);
  reg.reset();
  EXPECT_EQ(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.counter("c").value(), 0u);
}

TEST(Registry, GlobalIsAStableSingleton) {
  Registry& g1 = Registry::global();
  Registry& g2 = Registry::global();
  EXPECT_EQ(&g1, &g2);
}

}  // namespace
}  // namespace dbs::obs
