// Flight-recorder container format: packed-record codec, writer/reader
// round trip, the job and time indexes, and rejection of corrupt files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/recorder/manifest.hpp"
#include "obs/recorder/reader.hpp"
#include "obs/recorder/writer.hpp"

namespace dbs::obs::rec {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "recorder_format_" + name + ".dbsr";
}

PackedRecord make_record(std::int64_t t_us, RecordType type,
                         std::uint32_t job) {
  PackedRecord r;
  r.t_us = t_us;
  r.type = type;
  r.job = job;
  return r;
}

TEST(RecordCodec, RoundTripsEveryField) {
  PackedRecord r;
  r.t_us = -123456789;
  r.aux_us = 987654321;
  r.job = 42;
  r.other = 7;
  r.request = 13;
  r.cores = -96;
  r.iteration = 100000;
  r.user = 3;
  r.reason = 9;
  r.type = RecordType::DecRejectDyn;
  r.flags = kFlagApplied | kFlagDeferred | kFlagHasHint;

  unsigned char buf[kRecordSize];
  encode_record(r, buf);
  const PackedRecord d = decode_record(buf);
  EXPECT_EQ(d.t_us, r.t_us);
  EXPECT_EQ(d.aux_us, r.aux_us);
  EXPECT_EQ(d.job, r.job);
  EXPECT_EQ(d.other, r.other);
  EXPECT_EQ(d.request, r.request);
  EXPECT_EQ(d.cores, r.cores);
  EXPECT_EQ(d.iteration, r.iteration);
  EXPECT_EQ(d.user, r.user);
  EXPECT_EQ(d.reason, r.reason);
  EXPECT_EQ(d.type, r.type);
  EXPECT_EQ(d.flags, r.flags);
  EXPECT_TRUE(d.has(kFlagDeferred));
  EXPECT_FALSE(d.has(kFlagBackfilled));
}

TEST(RecordCodec, EncodingIsLittleEndianAndPadded) {
  PackedRecord r;
  r.t_us = 0x0102030405060708;
  unsigned char buf[kRecordSize];
  encode_record(r, buf);
  EXPECT_EQ(buf[0], 0x08);  // least-significant byte first
  EXPECT_EQ(buf[7], 0x01);
  for (std::size_t i = 42; i < kRecordSize; ++i) EXPECT_EQ(buf[i], 0);
}

TEST(RecordWriter, RoundTripsRecordsStringsAndHeader) {
  const std::string path = temp_path("roundtrip");
  RecordWriter writer;
  ASSERT_TRUE(writer.open(path, 128, 1'000'000));

  PackedRecord submit = make_record(1000, RecordType::Submit, 1);
  submit.user = writer.intern("alice");
  submit.cores = 16;
  submit.aux_us = 60'000'000;
  writer.append(submit);

  PackedRecord reject = make_record(2000, RecordType::DecRejectDyn, 1);
  reject.reason = writer.intern("denied-target-delay");
  reject.request = 5;
  reject.flags = kFlagApplied;
  writer.append(reject);

  EXPECT_EQ(writer.records_written(), 2u);
  EXPECT_EQ(writer.first_t_us(), 1000);
  EXPECT_EQ(writer.last_t_us(), 2000);
  ASSERT_TRUE(writer.finalize());

  RecordReader reader;
  ASSERT_TRUE(reader.open(path)) << reader.error();
  EXPECT_EQ(reader.record_count(), 2u);
  EXPECT_EQ(reader.capacity(), 128);
  EXPECT_EQ(reader.time_bucket_us(), 1'000'000);
  EXPECT_EQ(reader.indexed_jobs(), 1u);

  const PackedRecord r0 = reader.at(0);
  EXPECT_EQ(r0.type, RecordType::Submit);
  EXPECT_EQ(r0.cores, 16);
  EXPECT_EQ(reader.string_at(r0.user), "alice");
  const PackedRecord r1 = reader.at(1);
  EXPECT_EQ(r1.type, RecordType::DecRejectDyn);
  EXPECT_EQ(reader.string_at(r1.reason), "denied-target-delay");
  EXPECT_EQ(r1.request, 5u);
  std::remove(path.c_str());
}

TEST(RecordWriter, InternDeduplicatesAndIdZeroIsEmpty) {
  const std::string path = temp_path("intern");
  RecordWriter writer;
  ASSERT_TRUE(writer.open(path, 8));
  EXPECT_EQ(writer.intern(""), 0);
  const std::uint16_t a = writer.intern("alice");
  EXPECT_EQ(writer.intern("alice"), a);
  EXPECT_NE(writer.intern("bob"), a);
  ASSERT_TRUE(writer.finalize());
  std::remove(path.c_str());
}

TEST(RecordWriter, JobIndexMatchesFullScan) {
  const std::string path = temp_path("jobindex");
  RecordWriter writer;
  ASSERT_TRUE(writer.open(path, 64, 1'000'000));
  // Interleave three jobs plus one decision that touches two jobs (a
  // preemption: victim in `job`, beneficiary in `other`).
  for (std::uint32_t i = 0; i < 30; ++i)
    writer.append(make_record(1000 * i, RecordType::Submit, i % 3));
  PackedRecord preempt = make_record(50'000, RecordType::DecPreempt, 0);
  preempt.other = 2;
  preempt.flags = kFlagApplied;
  writer.append(preempt);
  ASSERT_TRUE(writer.finalize());

  RecordReader reader;
  ASSERT_TRUE(reader.open(path)) << reader.error();
  EXPECT_EQ(reader.jobs(), (std::vector<std::uint64_t>{0, 1, 2}));

  for (std::uint64_t job = 0; job < 3; ++job) {
    std::vector<std::int64_t> scanned;
    reader.scan_all([&](const PackedRecord& r) {
      if (r.job == job || (r.other == job && r.other != r.job))
        scanned.push_back(r.t_us);
    });
    const std::vector<PackedRecord> indexed = reader.for_job(job);
    ASSERT_EQ(indexed.size(), scanned.size()) << "job " << job;
    for (std::size_t i = 0; i < indexed.size(); ++i)
      EXPECT_EQ(indexed[i].t_us, scanned[i]);
  }
  // The preemption shows up under both jobs, once each.
  EXPECT_EQ(reader.for_job(0).back().type, RecordType::DecPreempt);
  EXPECT_EQ(reader.for_job(2).back().type, RecordType::DecPreempt);
  EXPECT_FALSE(reader.has_job(99));
  EXPECT_TRUE(reader.for_job(99).empty());
  std::remove(path.c_str());
}

TEST(RecordReader, TimeIndexScansExactRangesAcrossEmptyBuckets) {
  const std::string path = temp_path("timeindex");
  RecordWriter writer;
  ASSERT_TRUE(writer.open(path, 64, 1'000'000));  // 1 s buckets
  // Records at t = 0s, 0.5s, 3s (buckets 1 and 2 empty), 3.2s, 10s.
  const std::vector<std::int64_t> times = {0, 500'000, 3'000'000, 3'200'000,
                                           10'000'000};
  for (std::size_t i = 0; i < times.size(); ++i)
    writer.append(make_record(times[i], RecordType::Submit,
                              static_cast<std::uint32_t>(i)));
  ASSERT_TRUE(writer.finalize());

  RecordReader reader;
  ASSERT_TRUE(reader.open(path)) << reader.error();

  const auto collect = [&](std::int64_t from_us, std::int64_t to_us) {
    std::vector<std::int64_t> out;
    reader.scan_range(from_us, to_us,
                      [&](const PackedRecord& r) { out.push_back(r.t_us); });
    return out;
  };
  EXPECT_EQ(collect(0, 1'000'000), (std::vector<std::int64_t>{0, 500'000}));
  // A range starting inside the empty buckets picks up from the next record.
  EXPECT_EQ(collect(1'000'000, 4'000'000),
            (std::vector<std::int64_t>{3'000'000, 3'200'000}));
  // Half-open: a record exactly at `to` is excluded.
  EXPECT_EQ(collect(0, 3'000'000), (std::vector<std::int64_t>{0, 500'000}));
  // Range past the last bucket.
  EXPECT_EQ(collect(11'000'000, 99'000'000), std::vector<std::int64_t>{});
  // Full scan sees everything in append order.
  EXPECT_EQ(reader.scan_all([](const PackedRecord&) {}), times.size());
  std::remove(path.c_str());
}

TEST(RecordWriter, OutOfOrderTimestampIsClampedNotLost) {
  const std::string path = temp_path("clamp");
  RecordWriter writer;
  ASSERT_TRUE(writer.open(path, 64, 1'000'000));
  writer.append(make_record(5'000'000, RecordType::Submit, 0));
  writer.append(make_record(1'000'000, RecordType::Start, 0));  // straggler
  ASSERT_TRUE(writer.finalize());

  RecordReader reader;
  ASSERT_TRUE(reader.open(path)) << reader.error();
  std::vector<std::int64_t> times;
  reader.scan_range(4'000'000, 6'000'000,
                    [&](const PackedRecord& r) { times.push_back(r.t_us); });
  // Both records land in the 5 s bucket; timestamps stay nondecreasing.
  EXPECT_EQ(times, (std::vector<std::int64_t>{5'000'000, 5'000'000}));
  std::remove(path.c_str());
}

TEST(RecordReader, RejectsCorruptFiles) {
  const std::string good = temp_path("good");
  {
    RecordWriter writer;
    ASSERT_TRUE(writer.open(good, 64));
    writer.append(make_record(0, RecordType::Submit, 0));
    ASSERT_TRUE(writer.finalize());
  }

  RecordReader missing;
  EXPECT_FALSE(missing.open(temp_path("does_not_exist")));
  EXPECT_FALSE(missing.error().empty());

  // Truncation: drop the footer.
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string truncated = temp_path("truncated");
  std::ofstream(truncated, std::ios::binary)
      << bytes.substr(0, bytes.size() - kFooterSize);
  RecordReader trunc_reader;
  EXPECT_FALSE(trunc_reader.open(truncated));
  EXPECT_FALSE(trunc_reader.error().empty());

  // Bad magic.
  const std::string bad_magic = temp_path("badmagic");
  bytes[0] = 'X';
  std::ofstream(bad_magic, std::ios::binary) << bytes;
  RecordReader magic_reader;
  EXPECT_FALSE(magic_reader.open(bad_magic));
  EXPECT_NE(magic_reader.error().find("magic"), std::string::npos)
      << magic_reader.error();

  std::remove(good.c_str());
  std::remove(truncated.c_str());
  std::remove(bad_magic.c_str());
}

TEST(Manifest, ShardPathsAndJson) {
  EXPECT_EQ(shard_path("run.dbsr", 0), "run.dbsr");
  EXPECT_EQ(shard_path("run.dbsr", 3), "run.dbsr.rep3");

  Manifest m;
  ManifestShard a;
  a.path = "run.dbsr";
  a.records = 10;
  a.last_t_us = 99;
  ManifestShard b;
  b.path = "run.dbsr.rep1";
  b.replication = 1;
  b.records = 7;
  m.shards = {a, b};
  EXPECT_EQ(m.total_records(), 17u);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("run.dbsr.rep1"), std::string::npos);
  EXPECT_NE(json.find("\"total_records\": 17"), std::string::npos);
}

TEST(RecordType, NamesAndDecisionSplit) {
  EXPECT_EQ(to_string(RecordType::Submit), "submit");
  EXPECT_EQ(to_string(RecordType::DecStartJob), "dec_start_job");
  EXPECT_FALSE(is_decision(RecordType::Cancel));
  EXPECT_TRUE(is_decision(RecordType::DecReserve));
}

}  // namespace
}  // namespace dbs::obs::rec
