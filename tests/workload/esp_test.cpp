// The dynamic ESP workload must reproduce Table I exactly.
#include "workload/esp.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/assert.hpp"

namespace dbs::wl {
namespace {

TEST(EspTable, HasTheFourteenTypes) {
  const auto& table = esp_table();
  ASSERT_EQ(table.size(), 14u);
  int total_jobs = 0;
  for (const auto& t : table) total_jobs += t.count;
  EXPECT_EQ(total_jobs, 230);  // the ESP benchmark job count
}

TEST(EspTable, EvolvingTypesMatchPaper) {
  for (const auto& t : esp_table()) {
    const bool expected = t.letter == 'F' || t.letter == 'G' ||
                          t.letter == 'H' || t.letter == 'I' || t.letter == 'J';
    EXPECT_EQ(t.evolving, expected) << t.letter;
    if (t.evolving) EXPECT_EQ(t.user, "user06");
  }
}

TEST(EspTable, SizesOn128Cores) {
  const std::map<char, CoreCount> expected = {
      {'A', 4},  {'B', 8},  {'C', 64}, {'D', 32}, {'E', 64},
      {'F', 8},  {'G', 16}, {'H', 20}, {'I', 4},  {'J', 8},
      {'K', 12}, {'L', 16}, {'M', 32}, {'Z', 128}};
  for (const auto& t : esp_table())
    EXPECT_EQ(esp_cores(t, 128), expected.at(t.letter)) << t.letter;
}

TEST(EspTable, MinimumOneCore) {
  const EspJobType tiny{'T', 0.001, 1, "u", Duration::seconds(1), false,
                        Duration::zero()};
  EXPECT_EQ(esp_cores(tiny, 128), 1);
}

TEST(ModelDet, ReproducesTableOneDetValues) {
  // DET = SET * S / (S + 4) — must round to the paper's numbers.
  const std::map<char, std::int64_t> paper_det = {
      {'F', 1230}, {'G', 1067}, {'I', 716}, {'J', 483}};
  for (const auto& t : esp_table()) {
    if (!t.evolving || t.letter == 'H') continue;  // H's rounding ambiguous
    const Duration det = model_det(t.set, esp_cores(t, 128), 4);
    EXPECT_NEAR(det.as_seconds(), static_cast<double>(paper_det.at(t.letter)),
                1.0)
        << t.letter;
  }
  // H with fraction*128 = 20.25 -> 20 cores gives ~889s (paper: 896, which
  // matches 21 cores); within 1% either way.
  const auto& h = esp_table()[7];
  ASSERT_EQ(h.letter, 'H');
  EXPECT_NEAR(model_det(h.set, 20, 4).as_seconds(), 896.0, 8.0);
}

TEST(GenerateEsp, CompositionAndCounts) {
  const Workload wl = generate_esp(EspParams{});
  EXPECT_EQ(wl.jobs.size(), 230u);
  EXPECT_EQ(wl.evolving_count(), 69u);  // 30% evolving
  EXPECT_EQ(wl.rigid_count(), 161u);
  EXPECT_EQ(wl.total_cores, 128);
}

TEST(GenerateEsp, StaticVariantHasNoEvolvingJobs) {
  EspParams p;
  p.evolving_enabled = false;
  const Workload wl = generate_esp(p);
  EXPECT_EQ(wl.evolving_count(), 0u);
  EXPECT_EQ(wl.jobs.size(), 230u);
}

TEST(GenerateEsp, SubmissionSchedule) {
  const EspParams p;
  const Workload wl = generate_esp(p);
  // First 50 at t=0.
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(wl.jobs[i].at, Time::epoch()) << i;
  // Then one every 30s.
  for (std::size_t i = 50; i < 228; ++i)
    EXPECT_EQ(wl.jobs[i].at,
              Time::epoch() + Duration::seconds(30) *
                                  static_cast<std::int64_t>(i - 49))
        << i;
  // Z jobs 30 minutes after the last submission.
  const Time last = wl.jobs[227].at;
  EXPECT_EQ(wl.jobs[228].at, last + Duration::minutes(30));
  EXPECT_TRUE(wl.jobs[228].spec.exclusive_priority);
  EXPECT_TRUE(wl.jobs[229].spec.exclusive_priority);
  EXPECT_EQ(wl.jobs[228].spec.cores, 128);
}

TEST(GenerateEsp, DeterministicPerSeedAndShuffled) {
  const Workload a = generate_esp(EspParams{});
  const Workload b = generate_esp(EspParams{});
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].spec.name, b.jobs[i].spec.name);

  EspParams other;
  other.seed = 99;
  const Workload c = generate_esp(other);
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    differs |= a.jobs[i].spec.name != c.jobs[i].spec.name;
  EXPECT_TRUE(differs);
}

TEST(GenerateEsp, EvolvingBehaviorParameters) {
  const Workload wl = generate_esp(EspParams{});
  for (const auto& j : wl.jobs) {
    if (!j.behavior.evolving) continue;
    EXPECT_DOUBLE_EQ(j.behavior.first_ask_frac, 0.16);
    EXPECT_DOUBLE_EQ(j.behavior.retry_frac, 0.25);
    EXPECT_EQ(j.behavior.ask_cores, 4);
  }
}

TEST(GenerateEsp, WalltimeFactorApplies) {
  EspParams p;
  p.walltime_factor = 1.5;
  const Workload wl = generate_esp(p);
  for (const auto& j : wl.jobs)
    EXPECT_EQ(j.spec.walltime, j.behavior.static_runtime.scaled(1.5));
  p.walltime_factor = 0.9;
  EXPECT_THROW((void)generate_esp(p), precondition_error);
}

TEST(GenerateEsp, SmallerMachineScalesSizes) {
  EspParams p;
  p.total_cores = 120;  // the paper's 15-node cluster
  const Workload wl = generate_esp(p);
  for (const auto& j : wl.jobs) {
    if (j.spec.type_tag == "Z") EXPECT_EQ(j.spec.cores, 120);
    if (j.spec.type_tag == "A") EXPECT_EQ(j.spec.cores, 4);  // round(3.75)
  }
}

}  // namespace
}  // namespace dbs::wl
