#include "workload/submission.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::wl {
namespace {

TEST(EspSchedule, FirstBatchInstantRestSpaced) {
  const auto times = esp_schedule(10, 3, Duration::seconds(30));
  ASSERT_EQ(times.size(), 10u);
  EXPECT_EQ(times[0], Time::epoch());
  EXPECT_EQ(times[2], Time::epoch());
  EXPECT_EQ(times[3], Time::from_seconds(30));
  EXPECT_EQ(times[9], Time::from_seconds(7 * 30));
}

TEST(EspSchedule, AllInstantWhenCountBelowBatch) {
  const auto times = esp_schedule(5, 50, Duration::seconds(30));
  for (const Time t : times) EXPECT_EQ(t, Time::epoch());
}

TEST(EspSchedule, EmptyCount) {
  EXPECT_TRUE(esp_schedule(0, 10, Duration::seconds(30)).empty());
}

TEST(PoissonArrival, MonotonicAndScalesWithMean) {
  const Time t0 = Time::from_seconds(100);
  const Time a = next_poisson_arrival(t0, Duration::seconds(30), 0.5);
  EXPECT_GT(a, t0);
  const Time b = next_poisson_arrival(t0, Duration::seconds(60), 0.5);
  // Each call rounds to the microsecond independently.
  EXPECT_NEAR(static_cast<double>((b - t0).as_micros()),
              2.0 * static_cast<double>((a - t0).as_micros()), 1.0);
}

TEST(PoissonArrival, ZeroDrawMeansImmediate) {
  const Time t0 = Time::from_seconds(5);
  EXPECT_EQ(next_poisson_arrival(t0, Duration::seconds(30), 0.0), t0);
}

TEST(PoissonArrival, Validation) {
  EXPECT_THROW(
      (void)next_poisson_arrival(Time::epoch(), Duration::zero(), 0.5),
      precondition_error);
  EXPECT_THROW(
      (void)next_poisson_arrival(Time::epoch(), Duration::seconds(1), 1.0),
      precondition_error);
}

}  // namespace
}  // namespace dbs::wl
