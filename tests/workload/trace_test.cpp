#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/synthetic.hpp"

namespace dbs::wl {
namespace {

TEST(Trace, RoundTripsEspWorkload) {
  const Workload original = generate_esp(EspParams{});
  const Workload copy = trace_from_string(trace_to_string(original));
  ASSERT_EQ(copy.jobs.size(), original.jobs.size());
  EXPECT_EQ(copy.total_cores, original.total_cores);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const SubmitSpec& a = original.jobs[i];
    const SubmitSpec& b = copy.jobs[i];
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.spec.name, b.spec.name);
    EXPECT_EQ(a.spec.cred.user, b.spec.cred.user);
    EXPECT_EQ(a.spec.cores, b.spec.cores);
    EXPECT_EQ(a.spec.walltime, b.spec.walltime);
    EXPECT_EQ(a.spec.exclusive_priority, b.spec.exclusive_priority);
    EXPECT_EQ(a.behavior.evolving, b.behavior.evolving);
    EXPECT_EQ(a.behavior.static_runtime, b.behavior.static_runtime);
    EXPECT_EQ(a.behavior.ask_cores, b.behavior.ask_cores);
  }
}

TEST(Trace, RoundTripsSyntheticWithPreemptibleFlags) {
  SyntheticParams p;
  p.job_count = 40;
  p.preemptible_fraction = 0.5;
  const Workload original = generate_synthetic(p);
  const Workload copy = trace_from_string(trace_to_string(original));
  ASSERT_EQ(copy.jobs.size(), original.jobs.size());
  for (std::size_t i = 0; i < original.jobs.size(); ++i)
    EXPECT_EQ(copy.jobs[i].spec.preemptible,
              original.jobs[i].spec.preemptible);
}

TEST(Trace, IgnoresCommentsAndBlankLines) {
  const Workload wl = trace_from_string(
      "# a comment\n\n"
      "0 j1 alice grp batch 4 600000000 - 300000000 0.16 0.25 4 0\n");
  ASSERT_EQ(wl.jobs.size(), 1u);
  EXPECT_EQ(wl.jobs[0].spec.name, "j1");
  EXPECT_EQ(wl.jobs[0].spec.cores, 4);
  EXPECT_FALSE(wl.jobs[0].behavior.evolving);
}

TEST(Trace, ParsesFlags) {
  const Workload wl = trace_from_string(
      "0 e1 u g c 8 600000000 EXP 300000000 0.16 0.25 4 5000000\n");
  ASSERT_EQ(wl.jobs.size(), 1u);
  EXPECT_TRUE(wl.jobs[0].behavior.evolving);
  EXPECT_TRUE(wl.jobs[0].spec.exclusive_priority);
  EXPECT_TRUE(wl.jobs[0].spec.preemptible);
  EXPECT_EQ(wl.jobs[0].behavior.negotiation_timeout, Duration::seconds(5));
}

TEST(Trace, MalformedLinesRejectedWithLineNumber) {
  try {
    (void)trace_from_string("0 j1 alice grp batch 4\n");
    FAIL() << "expected throw";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW((void)trace_from_string(
                   "x j1 a g c 4 600000000 - 300000000 0.16 0.25 4 0\n"),
               precondition_error);
}

TEST(Trace, TotalCoresHeaderParsed) {
  const Workload wl = trace_from_string("# total_cores 64\n");
  EXPECT_EQ(wl.total_cores, 64);
}

}  // namespace
}  // namespace dbs::wl
