#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::wl {
namespace {

TEST(Synthetic, RespectsBasicBounds) {
  SyntheticParams p;
  p.job_count = 200;
  const Workload wl = generate_synthetic(p);
  ASSERT_EQ(wl.jobs.size(), 200u);
  Time previous = Time::epoch();
  for (const auto& j : wl.jobs) {
    EXPECT_GE(j.spec.cores, 1);
    EXPECT_LE(j.spec.cores, p.total_cores);
    EXPECT_GE(j.behavior.static_runtime, p.min_runtime);
    EXPECT_LE(j.behavior.static_runtime, p.max_runtime);
    EXPECT_GE(j.spec.walltime, j.behavior.static_runtime);
    EXPECT_GE(j.at, previous);  // arrivals are monotonic
    previous = j.at;
  }
}

TEST(Synthetic, EvolvingFractionApproximatelyMet) {
  SyntheticParams p;
  p.job_count = 2000;
  p.evolving_fraction = 0.3;
  const Workload wl = generate_synthetic(p);
  const double frac =
      static_cast<double>(wl.evolving_count()) / static_cast<double>(wl.jobs.size());
  EXPECT_NEAR(frac, 0.3, 0.05);
}

TEST(Synthetic, ZeroAndFullEvolvingFractions) {
  SyntheticParams p;
  p.job_count = 50;
  p.evolving_fraction = 0.0;
  EXPECT_EQ(generate_synthetic(p).evolving_count(), 0u);
  p.evolving_fraction = 1.0;
  EXPECT_EQ(generate_synthetic(p).evolving_count(), 50u);
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticParams p;
  p.job_count = 100;
  const Workload a = generate_synthetic(p);
  const Workload b = generate_synthetic(p);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].at, b.jobs[i].at);
    EXPECT_EQ(a.jobs[i].spec.cores, b.jobs[i].spec.cores);
  }
  p.seed = 2;
  const Workload c = generate_synthetic(p);
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    differs |= a.jobs[i].spec.cores != c.jobs[i].spec.cores ||
               a.jobs[i].at != c.jobs[i].at;
  EXPECT_TRUE(differs);
}

TEST(Synthetic, UsersRoundRobin) {
  SyntheticParams p;
  p.job_count = 16;
  p.user_count = 4;
  const Workload wl = generate_synthetic(p);
  EXPECT_EQ(wl.jobs[0].spec.cred.user, "user0");
  EXPECT_EQ(wl.jobs[5].spec.cred.user, "user1");
}

TEST(Synthetic, ParameterValidation) {
  SyntheticParams p;
  p.evolving_fraction = 1.5;
  EXPECT_THROW((void)generate_synthetic(p), precondition_error);
  p = SyntheticParams{};
  p.min_size_log2 = 5;
  p.max_size_log2 = 2;
  EXPECT_THROW((void)generate_synthetic(p), precondition_error);
  p = SyntheticParams{};
  p.walltime_factor = 0.5;
  EXPECT_THROW((void)generate_synthetic(p), precondition_error);
}

}  // namespace
}  // namespace dbs::wl
