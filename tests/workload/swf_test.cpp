#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "workload/swf/swf_gen.hpp"
#include "workload/swf/swf_parser.hpp"
#include "workload/swf/swf_source.hpp"

namespace dbs::wl::swf {
namespace {

// job submit wait run uprocs acpu umem rprocs rtime rmem status usr grp exe q part prec think
constexpr const char* kRecord =
    "1 10 5 100 4 -1 -1 8 200 -1 1 3 2 -1 5 -1 -1 -1\n";

TEST(SwfParser, ParsesDirectivesAndRecordFields) {
  std::istringstream in(
      "; Version: 2.2\n"
      ";  MaxJobs:  1500\n"
      "; MaxProcs: 128\n"
      "; MaxNodes: 16\n"
      "\n" +
      std::string(kRecord));
  SwfParser p(in);
  const SwfHeader& h = p.read_header();
  EXPECT_EQ(h.max_jobs, 1500);
  EXPECT_EQ(h.max_procs, 128);
  EXPECT_EQ(h.max_nodes, 16);
  ASSERT_EQ(h.directives.size(), 4u);
  EXPECT_EQ(h.directives[0].first, "Version");
  EXPECT_EQ(h.directives[0].second, "2.2");

  SwfRecord r;
  ASSERT_TRUE(p.next(r));
  EXPECT_EQ(r.job_number, 1);
  EXPECT_EQ(r.submit_s, 10);
  EXPECT_EQ(r.wait_s, 5);
  EXPECT_EQ(r.run_s, 100);
  EXPECT_EQ(r.used_procs, 4);
  EXPECT_EQ(r.avg_cpu_s, -1);
  EXPECT_EQ(r.req_procs, 8);
  EXPECT_EQ(r.req_time_s, 200);
  EXPECT_EQ(r.status, 1);
  EXPECT_EQ(r.user, 3);
  EXPECT_EQ(r.group, 2);
  EXPECT_EQ(r.queue, 5);
  EXPECT_EQ(r.think_time_s, -1);
  EXPECT_FALSE(p.next(r));
  EXPECT_EQ(p.records(), 1u);
  EXPECT_EQ(p.malformed(), 0u);
}

TEST(SwfParser, ReadHeaderIsIdempotentAndKeepsFirstRecord) {
  std::istringstream in("; MaxProcs: 64\n" + std::string(kRecord));
  SwfParser p(in);
  EXPECT_EQ(p.read_header().max_procs, 64);
  EXPECT_EQ(p.read_header().max_procs, 64);
  SwfRecord r;
  ASSERT_TRUE(p.next(r));  // the stashed first record is not lost
  EXPECT_EQ(r.job_number, 1);
}

TEST(SwfParser, ToleratesCrlfLineEndings) {
  std::istringstream in(
      "; MaxProcs: 64\r\n"
      "1 10 -1 100 4 -1 -1 -1 -1 -1 1 3 2 -1 5 -1 -1 -1\r\n");
  SwfParser p(in);
  SwfRecord r;
  ASSERT_TRUE(p.next(r));
  EXPECT_EQ(r.think_time_s, -1);  // the last field is not "-1\r"
  EXPECT_EQ(p.header().max_procs, 64);
}

TEST(SwfParser, SkipPolicyCountsMalformedLines) {
  std::istringstream in(
      "garbage line\n"          // non-numeric
      "1 2 3\n" +               // truncated: 3 of 18 fields
      std::string(kRecord) +
      "2 20 -1 50 4 -1 -1 -1 -1 -1 1 3 2 -1 5 -1 -1\n");  // 17 fields
  SwfParser p(in, MalformedPolicy::Skip);
  SwfRecord r;
  ASSERT_TRUE(p.next(r));
  EXPECT_EQ(r.job_number, 1);
  EXPECT_FALSE(p.next(r));
  EXPECT_EQ(p.records(), 1u);
  EXPECT_EQ(p.malformed(), 3u);
}

TEST(SwfParser, StrictPolicyThrowsWithLineNumber) {
  std::istringstream in("; MaxProcs: 4\nnot a record\n");
  SwfParser p(in, MalformedPolicy::Strict);
  SwfRecord r;
  try {
    (void)p.next(r);
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(SwfSource, MapsRecordsAndSkipsUnusable) {
  std::istringstream in(
      std::string(kRecord) +
      "2 20 -1 -1 4 -1 -1 -1 -1 -1 1 3 2 -1 5 -1 -1 -1\n"   // no runtime
      "3 30 -1 50 -1 -1 -1 -1 -1 -1 1 3 2 -1 5 -1 -1 -1\n"  // no size
      "4 -1 -1 50 4 -1 -1 -1 -1 -1 1 3 2 -1 5 -1 -1 -1\n"   // no submit
      "5 40 -1 0 -1 -1 -1 16 30 -1 1 7 -1 -1 -1 -1 -1 -1\n");
  SwfSource src(in, {});
  SubmitSpec s;
  ASSERT_TRUE(src.next(s));
  EXPECT_EQ(s.spec.name, "j1");
  EXPECT_EQ(s.spec.cores, 4);  // allocated size wins over requested 8
  EXPECT_EQ(s.at, Time::epoch() + Duration::seconds(10));
  EXPECT_EQ(s.spec.walltime, Duration::seconds(200));
  EXPECT_EQ(s.behavior.static_runtime, Duration::seconds(100));
  EXPECT_EQ(s.spec.cred.user, "u3");
  EXPECT_EQ(s.spec.cred.group, "g2");
  EXPECT_EQ(s.spec.cred.job_class, "q5");
  EXPECT_FALSE(s.behavior.evolving);

  ASSERT_TRUE(src.next(s));  // job 5: req_procs fallback, runtime floored
  EXPECT_EQ(s.spec.name, "j5");
  EXPECT_EQ(s.spec.cores, 16);
  EXPECT_EQ(s.behavior.static_runtime, Duration::seconds(1));
  EXPECT_EQ(s.spec.walltime, Duration::seconds(30));
  EXPECT_EQ(s.spec.cred.group, "");  // -1 group stays empty

  EXPECT_FALSE(src.next(s));
  EXPECT_EQ(src.yielded(), 2u);
  EXPECT_EQ(src.unusable(), 3u);
  EXPECT_EQ(src.distinct_users(), 2u);
}

TEST(SwfSource, UnknownUserGetsSyntheticName) {
  std::istringstream in(
      "1 10 -1 50 4 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  SwfSource src(in, {});
  SubmitSpec s;
  ASSERT_TRUE(src.next(s));
  EXPECT_EQ(s.spec.cred.user, "u_unknown");
}

TEST(SwfSource, ClampsNonMonotonicSubmitTimes) {
  std::istringstream in(
      std::string(kRecord) +
      "2 5 -1 50 4 -1 -1 -1 -1 -1 1 3 2 -1 5 -1 -1 -1\n");  // back in time
  SwfSource src(in, {});
  SubmitSpec s;
  ASSERT_TRUE(src.next(s));
  ASSERT_TRUE(src.next(s));
  EXPECT_EQ(s.at, Time::epoch() + Duration::seconds(10));  // clamped to 10
  EXPECT_EQ(src.clamped_times(), 1u);
}

TEST(SwfSource, ClampsWidthToMaxCores) {
  std::istringstream in(
      "1 0 -1 50 512 -1 -1 -1 -1 -1 1 3 2 -1 5 -1 -1 -1\n");
  SwfSourceConfig cfg;
  cfg.max_cores = 64;
  SwfSource src(in, cfg);
  SubmitSpec s;
  ASSERT_TRUE(src.next(s));
  EXPECT_EQ(s.spec.cores, 64);
  EXPECT_EQ(src.clamped_cores(), 1u);
}

TEST(SwfSource, OverlayIsPureAndFractionBounded) {
  // The mark is a pure function of (seed, job number): no dependence on
  // parse order, window size or trace position.
  std::set<std::int64_t> marked;
  for (std::int64_t j = 0; j < 2000; ++j)
    if (SwfSource::overlay_marks(2014, 0.3, j)) marked.insert(j);
  // ~30% within loose bounds, deterministic for the fixed seed.
  EXPECT_GT(marked.size(), 480u);
  EXPECT_LT(marked.size(), 720u);
  for (std::int64_t j : {std::int64_t{0}, std::int64_t{17}, std::int64_t{999}})
    EXPECT_EQ(SwfSource::overlay_marks(2014, 0.3, j), marked.contains(j));
  // Different seeds give a different (still deterministic) marking.
  std::set<std::int64_t> other;
  for (std::int64_t j = 0; j < 2000; ++j)
    if (SwfSource::overlay_marks(7, 0.3, j)) other.insert(j);
  EXPECT_NE(marked, other);
  // Degenerate fractions.
  EXPECT_FALSE(SwfSource::overlay_marks(2014, 0.0, 5));
  EXPECT_TRUE(SwfSource::overlay_marks(2014, 1.0, 5));
}

TEST(SwfSource, OverlayMarksSameJobsAcrossWindowsAndReparses) {
  SwfGenParams gp;
  gp.jobs = 200;
  gp.seed = 9;
  std::ostringstream trace;
  generate_swf(trace, gp);

  const auto marked_names = [&](double fraction) {
    std::istringstream in(trace.str());
    SwfSourceConfig cfg;
    cfg.overlay_dynamic_fraction = fraction;
    SwfSource src(in, cfg);
    std::set<std::string> names;
    SubmitSpec s;
    while (src.next(s))
      if (s.behavior.evolving) names.insert(s.spec.name);
    return names;
  };
  const auto a = marked_names(0.25);
  const auto b = marked_names(0.25);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  // A larger fraction marks a superset under the same seed? Not required
  // by the hash construction — but determinism per fraction is.
  EXPECT_EQ(marked_names(0.0).size(), 0u);
}

TEST(SwfGen, StreamMatchesEagerWriter) {
  SwfGenParams gp;
  gp.jobs = 500;
  gp.seed = 31;
  std::ostringstream eager;
  generate_swf(eager, gp);
  SwfGenStream lazy(gp);
  std::ostringstream drained;
  drained << lazy.rdbuf();
  EXPECT_EQ(drained.str(), eager.str());
}

TEST(SwfGen, CheckedInExcerptParsesCleanly) {
  std::ifstream in(std::string(DBS_TEST_DATA_DIR) + "/excerpt_1k.swf");
  ASSERT_TRUE(in.good()) << "missing tests/data/excerpt_1k.swf";
  SwfParser p(in, MalformedPolicy::Strict);
  EXPECT_EQ(p.read_header().max_procs, 1024);
  SwfRecord r;
  std::uint64_t n = 0;
  std::int64_t last_submit = 0;
  while (p.next(r)) {
    ++n;
    EXPECT_GE(r.submit_s, last_submit);
    last_submit = r.submit_s;
  }
  EXPECT_EQ(n, 1000u);
  EXPECT_EQ(p.malformed(), 0u);
}

}  // namespace
}  // namespace dbs::wl::swf
