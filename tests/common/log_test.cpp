#include "common/log.hpp"

#include <gtest/gtest.h>

namespace dbs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(logging::level()) {}
  ~LogLevelGuard() { logging::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsOff) {
  EXPECT_EQ(logging::level(), LogLevel::Off);
}

TEST(Log, ThresholdFiltersEvaluation) {
  LogLevelGuard guard;
  logging::set_level(LogLevel::Warn);
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return "x";
  };
  testing::internal::CaptureStderr();
  DBS_DEBUG(touch());  // below threshold: expression must not run
  DBS_WARN(touch());   // at threshold: runs and emits
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(err.find("[warn ] x"), std::string::npos);
}

TEST(Log, TraceLevelEmitsEverything) {
  LogLevelGuard guard;
  logging::set_level(LogLevel::Trace);
  testing::internal::CaptureStderr();
  DBS_TRACE("t" << 1);
  DBS_INFO("i" << 2);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[trace] t1"), std::string::npos);
  EXPECT_NE(err.find("[info ] i2"), std::string::npos);
}

}  // namespace
}  // namespace dbs
