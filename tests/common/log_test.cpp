#include "common/log.hpp"

#include <gtest/gtest.h>

namespace dbs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(logging::level()) {}
  ~LogLevelGuard() { logging::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsOff) {
  EXPECT_EQ(logging::level(), LogLevel::Off);
}

TEST(Log, ThresholdFiltersEvaluation) {
  LogLevelGuard guard;
  logging::set_level(LogLevel::Warn);
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return "x";
  };
  testing::internal::CaptureStderr();
  DBS_DEBUG(touch());  // below threshold: expression must not run
  DBS_WARN(touch());   // at threshold: runs and emits
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(err.find("[warn ] x"), std::string::npos);
}

TEST(Log, ParseLevelNamesCaseInsensitively) {
  EXPECT_EQ(logging::parse_level("trace"), LogLevel::Trace);
  EXPECT_EQ(logging::parse_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(logging::parse_level("Info"), LogLevel::Info);
  EXPECT_EQ(logging::parse_level("warn"), LogLevel::Warn);
  EXPECT_EQ(logging::parse_level("warning"), LogLevel::Warn);
  EXPECT_EQ(logging::parse_level("off"), LogLevel::Off);
  EXPECT_EQ(logging::parse_level("none"), LogLevel::Off);
  EXPECT_EQ(logging::parse_level("verbose"), std::nullopt);
  EXPECT_EQ(logging::parse_level(""), std::nullopt);
}

TEST(Log, InitFromEnvAppliesDbsLogLevel) {
  LogLevelGuard guard;
  ::setenv("DBS_LOG_LEVEL", "debug", 1);
  logging::init_from_env();
  EXPECT_EQ(logging::level(), LogLevel::Debug);
  // Unknown values leave the level untouched.
  ::setenv("DBS_LOG_LEVEL", "shouting", 1);
  logging::init_from_env();
  EXPECT_EQ(logging::level(), LogLevel::Debug);
  ::unsetenv("DBS_LOG_LEVEL");
  logging::init_from_env();
  EXPECT_EQ(logging::level(), LogLevel::Debug);
}

TEST(Log, RegisteredSimClockPrefixesTimestamp) {
  LogLevelGuard guard;
  logging::set_level(LogLevel::Info);
  const int owner = 0;
  logging::register_sim_clock(&owner, [](const void*) {
    return Time::epoch() + Duration::seconds(65);
  });
  testing::internal::CaptureStderr();
  DBS_INFO("tick");
  logging::unregister_sim_clock(&owner);
  DBS_INFO("tock");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[info ] [00:01:05] tick"), std::string::npos) << err;
  EXPECT_NE(err.find("[info ] tock"), std::string::npos) << err;
}

TEST(Log, UnregisterIgnoresForeignOwner) {
  const int a = 0, b = 0;
  logging::register_sim_clock(&a, [](const void*) { return Time::epoch(); });
  logging::unregister_sim_clock(&b);  // not the current owner: no-op
  LogLevelGuard guard;
  logging::set_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  DBS_INFO("still stamped");
  logging::unregister_sim_clock(&a);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[00:00:00] still stamped"), std::string::npos) << err;
}

TEST(Log, TraceLevelEmitsEverything) {
  LogLevelGuard guard;
  logging::set_level(LogLevel::Trace);
  testing::internal::CaptureStderr();
  DBS_TRACE("t" << 1);
  DBS_INFO("i" << 2);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[trace] t1"), std::string::npos);
  EXPECT_NE(err.find("[info ] i2"), std::string::npos);
}

}  // namespace
}  // namespace dbs
