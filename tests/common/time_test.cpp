#include "common/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace dbs {
namespace {

TEST(Duration, FactoryUnitsCompose) {
  EXPECT_EQ(Duration::seconds(1).as_micros(), 1'000'000);
  EXPECT_EQ(Duration::millis(3).as_micros(), 3'000);
  EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::seconds(90);
  const Duration b = Duration::seconds(30);
  EXPECT_EQ(a + b, Duration::seconds(120));
  EXPECT_EQ(a - b, Duration::seconds(60));
  EXPECT_EQ(-b, Duration::seconds(-30));
  EXPECT_EQ(b * 4, Duration::seconds(120));
  EXPECT_EQ(a / 3, Duration::seconds(30));
}

TEST(Duration, ScaledRoundsToNearestMicrosecond) {
  EXPECT_EQ(Duration::micros(10).scaled(0.25), Duration::micros(3));
  EXPECT_EQ(Duration::seconds(1846).scaled(8.0 / 12.0),
            Duration::micros(1'230'666'667));
}

TEST(Duration, SecondsFRounds) {
  EXPECT_EQ(Duration::seconds_f(1.5), Duration::micros(1'500'000));
  EXPECT_EQ(Duration::seconds_f(0.0000004), Duration::zero());
}

TEST(Duration, RatioAndZeroGuard) {
  EXPECT_DOUBLE_EQ(Duration::seconds(30).ratio(Duration::seconds(60)), 0.5);
  EXPECT_THROW((void)Duration::seconds(1).ratio(Duration::zero()),
               precondition_error);
}

TEST(Duration, HmsFormatting) {
  EXPECT_EQ(Duration::seconds(0).to_hms(), "00:00:00");
  EXPECT_EQ(Duration::seconds(3661).to_hms(), "01:01:01");
  EXPECT_EQ(Duration::seconds(-90).to_hms(), "-00:01:30");
  EXPECT_EQ((Duration::hours(30) + Duration::seconds(5)).to_hms(), "30:00:05");
}

TEST(Duration, ComparisonsAndPredicates) {
  EXPECT_LT(Duration::seconds(1), Duration::seconds(2));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE(Duration::seconds(-1).is_negative());
  EXPECT_FALSE(Duration::seconds(1).is_negative());
}

TEST(Time, EpochAndArithmetic) {
  const Time t = Time::epoch() + Duration::seconds(10);
  EXPECT_EQ(t.as_micros(), 10'000'000);
  EXPECT_EQ(t - Time::epoch(), Duration::seconds(10));
  EXPECT_EQ(t - Duration::seconds(4), Time::from_seconds(6));
}

TEST(Time, MinMaxHelpers) {
  const Time a = Time::from_seconds(1);
  const Time b = Time::from_seconds(2);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(min(Duration::seconds(1), Duration::seconds(2)),
            Duration::seconds(1));
}

TEST(Time, FarFutureDominates) {
  EXPECT_GT(Time::far_future(), Time::from_seconds(1'000'000'000));
  // Adding a plausible duration must not overflow into the past.
  EXPECT_GT(Time::far_future() + Duration::hours(1000), Time::far_future());
}

TEST(Time, StreamOutput) {
  std::ostringstream os;
  os << Time::from_seconds(3600) << " " << Duration::millis(1500);
  EXPECT_EQ(os.str(), "01:00:00 1.500s");
}

}  // namespace
}  // namespace dbs
