#include "common/interner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dbs::common {
namespace {

TEST(StringInterner, EmptyStringIsIdZero) {
  StringInterner in;
  EXPECT_EQ(in.intern(""), 0u);
  EXPECT_EQ(in.view(0), "");
  EXPECT_EQ(in.size(), 1u);
}

TEST(StringInterner, SameStringSameId) {
  StringInterner in;
  const auto a = in.intern("alice");
  const auto b = in.intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("alice"), a);
  EXPECT_EQ(in.intern("bob"), b);
  EXPECT_EQ(in.size(), 3u);  // "", alice, bob
}

TEST(StringInterner, IdsAreDenseAndViewRoundTrips) {
  StringInterner in;
  for (int i = 0; i < 100; ++i) {
    const std::string s = "u" + std::to_string(i);
    EXPECT_EQ(in.intern(s), static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(in.view(static_cast<std::uint32_t>(i + 1)), s);
  }
}

TEST(StringInterner, ViewsStayValidAcrossGrowth) {
  StringInterner in;
  const std::string_view first = in.view(in.intern("first"));
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 10000; ++i)
    ids.push_back(in.intern("k" + std::to_string(i)));
  // The early view must not have been invalidated by rehash/growth.
  EXPECT_EQ(first, "first");
  EXPECT_EQ(in.view(ids[42]), "k42");
  EXPECT_EQ(in.size(), 10002u);
}

TEST(StringInterner, InternDoesNotDependOnArgumentLifetime) {
  StringInterner in;
  std::uint32_t id = 0;
  {
    std::string temp = "ephemeral";
    id = in.intern(temp);
  }
  EXPECT_EQ(in.view(id), "ephemeral");
  EXPECT_EQ(in.intern("ephemeral"), id);
}

}  // namespace
}  // namespace dbs::common
