#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace dbs {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
  EXPECT_THROW((void)rng.next_below(0), precondition_error);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.next_int(5, 5), 5);
  EXPECT_THROW((void)rng.next_int(2, 1), precondition_error);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRoughlyUniform) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  Rng rng(99);
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> a(20), b(20);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng r1(42), r2(42);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dbs
