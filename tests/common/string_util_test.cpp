#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace dbs {
namespace {

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim("\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Split, DropsEmptyFields) {
  EXPECT_EQ(split("a  b\tc"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("   "), std::vector<std::string>{});
  EXPECT_EQ(split("a:b::c", ":"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitOnce, FirstOccurrence) {
  const auto r = split_once("KEY=a=b", '=');
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, "KEY");
  EXPECT_EQ(r->second, "a=b");
  EXPECT_FALSE(split_once("no-separator", '=').has_value());
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("DfsPolicy", "DFSPOLICY"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(ToUpper, Ascii) {
  EXPECT_EQ(to_upper("UserCfg[u1]"), "USERCFG[U1]");
}

struct DurationCase {
  const char* text;
  std::int64_t expected_seconds;
};

class ParseDurationValid : public testing::TestWithParam<DurationCase> {};

TEST_P(ParseDurationValid, Parses) {
  const auto d = parse_duration(GetParam().text);
  ASSERT_TRUE(d.has_value()) << GetParam().text;
  EXPECT_EQ(*d, Duration::seconds(GetParam().expected_seconds));
}

INSTANTIATE_TEST_SUITE_P(
    Formats, ParseDurationValid,
    testing::Values(DurationCase{"0", 0}, DurationCase{"3600", 3600},
                    DurationCase{"06:00:00", 21600},
                    DurationCase{"00:30:00", 1800}, DurationCase{"02:05", 125},
                    DurationCase{" 500 ", 500},
                    DurationCase{"100:00:00", 360000}));

class ParseDurationInvalid : public testing::TestWithParam<const char*> {};

TEST_P(ParseDurationInvalid, Rejects) {
  EXPECT_FALSE(parse_duration(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Formats, ParseDurationInvalid,
                         testing::Values("", "abc", "1:2:3:4", "-5", "1.5",
                                         "12:", ":30", "1h"));

TEST(ParseBool, Variants) {
  EXPECT_EQ(parse_bool("1"), true);
  EXPECT_EQ(parse_bool("0"), false);
  EXPECT_EQ(parse_bool("TRUE"), true);
  EXPECT_EQ(parse_bool("off"), false);
  EXPECT_EQ(parse_bool("Yes"), true);
  EXPECT_FALSE(parse_bool("2").has_value());
  EXPECT_FALSE(parse_bool("").has_value());
}

TEST(ParseInt, NonNegativeOnly) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" 7 "), 7);
  EXPECT_FALSE(parse_int("-1").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(ParseDouble, Parses) {
  EXPECT_DOUBLE_EQ(*parse_double("0.4"), 0.4);
  EXPECT_DOUBLE_EQ(*parse_double("-2.5e3"), -2500.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.0x").has_value());
}

}  // namespace
}  // namespace dbs
