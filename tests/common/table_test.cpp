#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs {
namespace {

TEST(TextTable, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, precondition_error);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos) << s;
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain,\"has,comma\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos) << csv;
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::int64_t{42}), "42");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace dbs
