#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dbs {
namespace {

TEST(TaggedId, DefaultIsInvalid) {
  JobId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, JobId::invalid());
}

TEST(TaggedId, ValueRoundTrip) {
  const JobId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(TaggedId, Ordering) {
  EXPECT_LT(JobId{1}, JobId{2});
  EXPECT_EQ(NodeId{7}, NodeId{7});
  EXPECT_NE(NodeId{7}, NodeId{8});
}

TEST(TaggedId, Hashable) {
  std::unordered_set<JobId> set;
  set.insert(JobId{1});
  set.insert(JobId{2});
  set.insert(JobId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(JobId{2}));
}

TEST(Credentials, Equality) {
  const Credentials a{"u", "g", "a", "c", "q"};
  Credentials b = a;
  EXPECT_EQ(a, b);
  b.user = "other";
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dbs
