// Differential fuzz of the index-based Cluster against the old scan-based
// allocator (tests/property/reference_allocator.hpp): random sequences of
// allocate / allocate_chunked / release / release_all / node-down/up across
// Pack, Spread and FirstFit. Every placement must be byte-identical to the
// reference (same shares, same order), every query must agree, and the
// incremental indexes must survive check_invariants() after every step.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "../property/reference_allocator.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"

namespace dbs::cluster {
namespace {

using testing::ReferenceCluster;

AllocationPolicy pick_policy(Rng& rng) {
  switch (rng.next_int(0, 2)) {
    case 0: return AllocationPolicy::Pack;
    case 1: return AllocationPolicy::Spread;
    default: return AllocationPolicy::FirstFit;
  }
}

void expect_same_placement(const std::optional<Placement>& got,
                           const std::optional<Placement>& want,
                           const char* what, int step) {
  ASSERT_EQ(got.has_value(), want.has_value()) << what << " at step " << step;
  if (!got) return;
  ASSERT_EQ(got->shares.size(), want->shares.size())
      << what << " share count at step " << step;
  for (std::size_t i = 0; i < got->shares.size(); ++i) {
    EXPECT_EQ(got->shares[i].node, want->shares[i].node)
        << what << " share " << i << " node at step " << step;
    EXPECT_EQ(got->shares[i].cores, want->shares[i].cores)
        << what << " share " << i << " cores at step " << step;
  }
}

class AllocatorDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorDifferential, IndexedPlacementsMatchScanAllocator) {
  Rng rng(GetParam());
  const std::size_t node_count = static_cast<std::size_t>(
      rng.next_int(2, 24));
  const auto cores_per_node = static_cast<CoreCount>(rng.next_int(1, 12));
  Cluster cluster(ClusterSpec{node_count, cores_per_node});
  ReferenceCluster reference(node_count, cores_per_node);

  std::map<JobId, Placement> live;      // job -> canonical merged placement
  std::vector<NodeId> down_nodes;
  std::uint64_t next_job = 0;

  for (int step = 0; step < 1500; ++step) {
    const int op = static_cast<int>(rng.next_int(0, 99));
    if (op < 30) {
      // Plain allocation.
      const JobId id{next_job++};
      const auto cores = static_cast<CoreCount>(
          rng.next_int(1, static_cast<int>(cluster.total_cores()) + 4));
      const AllocationPolicy policy = pick_policy(rng);
      const auto got = cluster.allocate(id, cores, policy);
      const auto want = reference.allocate(id, cores, policy);
      expect_same_placement(got, want, "allocate", step);
      if (got) {
        Placement merged = live.count(id) ? live[id] : Placement{};
        merged.merge(*got);
        live[id] = merged;
      }
    } else if (op < 55) {
      // Torque-style chunked allocation.
      const JobId id{next_job++};
      const auto ppn = static_cast<CoreCount>(rng.next_int(1, cores_per_node));
      const auto cores = static_cast<CoreCount>(
          rng.next_int(1, 3 * ppn * static_cast<int>(node_count) / 2 + 1));
      const AllocationPolicy policy = pick_policy(rng);
      const bool predicted = policy == AllocationPolicy::Pack
                                 ? cluster.can_allocate_chunked(cores, ppn)
                                 : false;
      const auto got = cluster.allocate_chunked(id, cores, ppn, policy);
      const auto want = reference.allocate_chunked(id, cores, ppn, policy);
      expect_same_placement(got, want, "allocate_chunked", step);
      if (policy == AllocationPolicy::Pack) {
        EXPECT_EQ(predicted, got.has_value())
            << "can_allocate_chunked disagreed at step " << step;
      }
      if (got) {
        Placement merged = live.count(id) ? live[id] : Placement{};
        merged.merge(*got);
        live[id] = merged;
      }
    } else if (op < 70 && !live.empty()) {
      // Partial release of a random live job.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      if (it->second.total_cores() > 1) {
        const auto part = static_cast<CoreCount>(
            rng.next_int(1, it->second.total_cores() - 1));
        const Placement freed = it->second.select_release(part);
        cluster.release(it->first, freed);
        reference.release(it->first, freed);
        Placement remaining;
        for (const NodeShare& s : it->second.shares) {
          CoreCount kept = s.cores;
          for (const NodeShare& f : freed.shares)
            if (f.node == s.node) kept -= f.cores;
          if (kept > 0) remaining.shares.push_back({s.node, kept});
        }
        it->second = remaining;
      }
    } else if (op < 85 && !live.empty()) {
      // Full release.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      const Placement got = cluster.release_all(it->first);
      const Placement want = reference.release_all(it->first);
      expect_same_placement(got, want, "release_all", step);
      EXPECT_EQ(got.total_cores(), it->second.total_cores());
      live.erase(it);
    } else if (op < 92) {
      // Node failure / recovery.
      if (!down_nodes.empty() && rng.next_double() < 0.5) {
        const NodeId id = down_nodes.back();
        down_nodes.pop_back();
        cluster.set_node_state(id, NodeState::Up);
        reference.set_node_state(id, true);
      } else {
        const NodeId id{rng.next_below(node_count)};
        if (cluster.node(id).state() == NodeState::Up) {
          cluster.set_node_state(id, NodeState::Down);
          reference.set_node_state(id, false);
          down_nodes.push_back(id);
        }
      }
    } else {
      // Pure queries.
      const auto ppn = static_cast<CoreCount>(rng.next_int(1, cores_per_node));
      const auto cores = static_cast<CoreCount>(
          rng.next_int(1, ppn * static_cast<int>(node_count) + 2));
      EXPECT_EQ(cluster.can_allocate_chunked(cores, ppn),
                reference.can_allocate_chunked(cores, ppn))
          << "can_allocate_chunked " << cores << ":" << ppn << " at step "
          << step;
    }

    // Global agreement + index integrity after every step.
    EXPECT_EQ(cluster.used_cores(), reference.used_cores()) << "step " << step;
    EXPECT_EQ(cluster.free_cores(), reference.free_cores()) << "step " << step;
    ASSERT_NO_THROW(cluster.check_invariants()) << "step " << step;
    if (step % 50 == 0) {
      for (const auto& [id, placement] : live) {
        EXPECT_EQ(cluster.held_by(id), reference.held_by(id));
        EXPECT_EQ(cluster.held_by(id), placement.total_cores());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorDifferential,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 11u, 13u, 42u,
                                           99u, 1234u, 31337u, 987654u));

}  // namespace
}  // namespace dbs::cluster
