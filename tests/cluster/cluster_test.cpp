#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::cluster {
namespace {

Cluster make(std::size_t nodes = 4, CoreCount cpn = 8) {
  return Cluster(ClusterSpec{nodes, cpn});
}

TEST(Cluster, Capacity) {
  const Cluster c = make(16, 8);
  EXPECT_EQ(c.total_cores(), 128);
  EXPECT_EQ(c.free_cores(), 128);
  EXPECT_EQ(c.node_count(), 16u);
  EXPECT_EQ(c.cores_per_node(), 8);
}

TEST(Cluster, AllocateWithinOneNode) {
  Cluster c = make();
  const auto p = c.allocate(JobId{1}, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->total_cores(), 5);
  EXPECT_EQ(p->node_count(), 1u);
  EXPECT_EQ(c.free_cores(), 27);
  EXPECT_EQ(c.held_by(JobId{1}), 5);
}

TEST(Cluster, AllocateSpansNodes) {
  Cluster c = make(4, 8);
  const auto p = c.allocate(JobId{1}, 20);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->total_cores(), 20);
  EXPECT_GE(p->node_count(), 3u);
}

TEST(Cluster, AllocateFailsWithoutCapacityAndChangesNothing) {
  Cluster c = make(2, 8);
  ASSERT_TRUE(c.allocate(JobId{1}, 10).has_value());
  EXPECT_FALSE(c.allocate(JobId{2}, 7).has_value());
  EXPECT_EQ(c.free_cores(), 6);
  EXPECT_EQ(c.held_by(JobId{2}), 0);
}

TEST(Cluster, PackPolicyFillsBusiestFirst) {
  Cluster c = make(3, 8);
  ASSERT_TRUE(c.allocate(JobId{1}, 6).has_value());  // node with 2 free
  const auto p = c.allocate(JobId{2}, 2, AllocationPolicy::Pack);
  ASSERT_TRUE(p.has_value());
  // Pack should reuse the partially filled node.
  EXPECT_EQ(p->shares[0].node, c.nodes()[0].id());
}

TEST(Cluster, SpreadPolicyUsesEmptiestFirst) {
  Cluster c = make(3, 8);
  ASSERT_TRUE(c.allocate(JobId{1}, 6).has_value());
  const auto p = c.allocate(JobId{2}, 2, AllocationPolicy::Spread);
  ASSERT_TRUE(p.has_value());
  EXPECT_NE(p->shares[0].node, c.nodes()[0].id());
}

TEST(Cluster, ReleaseExactPlacement) {
  Cluster c = make();
  const auto p = c.allocate(JobId{1}, 12);
  ASSERT_TRUE(p.has_value());
  c.release(JobId{1}, *p);
  EXPECT_EQ(c.free_cores(), 32);
  EXPECT_EQ(c.held_by(JobId{1}), 0);
}

TEST(Cluster, ReleaseAllCollectsEverything) {
  Cluster c = make();
  ASSERT_TRUE(c.allocate(JobId{1}, 12).has_value());
  ASSERT_TRUE(c.allocate(JobId{1}, 4).has_value());
  const Placement freed = c.release_all(JobId{1});
  EXPECT_EQ(freed.total_cores(), 16);
  EXPECT_EQ(c.free_cores(), 32);
}

TEST(Cluster, DownNodeReducesFreeCores) {
  Cluster c = make(4, 8);
  c.set_node_state(NodeId{0}, NodeState::Down);
  EXPECT_EQ(c.free_cores(), 24);
  const auto p = c.allocate(JobId{1}, 24);
  ASSERT_TRUE(p.has_value());
  for (const auto& share : p->shares) EXPECT_NE(share.node, NodeId{0});
}

TEST(Cluster, InvariantsHold) {
  Cluster c = make();
  ASSERT_TRUE(c.allocate(JobId{1}, 13).has_value());
  EXPECT_NO_THROW(c.check_invariants());
}

TEST(Cluster, PlacementMerge) {
  Placement a{{{NodeId{0}, 4}, {NodeId{1}, 8}}};
  const Placement b{{{NodeId{1}, 2}, {NodeId{2}, 1}}};
  a.merge(b);
  EXPECT_EQ(a.total_cores(), 15);
  EXPECT_EQ(a.shares.size(), 3u);
  EXPECT_EQ(a.shares[1].cores, 10);
}

TEST(Cluster, PlacementMergeCanonicalizesUnsortedInputs) {
  // Placements from the allocator arrive in policy order, not id order;
  // merge must still combine per-node shares and emit a sorted result.
  Placement a{{{NodeId{3}, 2}, {NodeId{0}, 4}}};
  const Placement b{{{NodeId{2}, 1}, {NodeId{3}, 5}}};
  a.merge(b);
  ASSERT_EQ(a.shares.size(), 3u);
  EXPECT_EQ(a.shares[0], (NodeShare{NodeId{0}, 4}));
  EXPECT_EQ(a.shares[1], (NodeShare{NodeId{2}, 1}));
  EXPECT_EQ(a.shares[2], (NodeShare{NodeId{3}, 7}));
}

TEST(Cluster, SelectReleaseSmallestShareFastPath) {
  // The smallest share covers the request: released from that node alone,
  // exactly as the full sorted walk would.
  const Placement p{{{NodeId{0}, 8}, {NodeId{1}, 3}, {NodeId{2}, 5}}};
  const Placement freed = p.select_release(2);
  ASSERT_EQ(freed.shares.size(), 1u);
  EXPECT_EQ(freed.shares[0], (NodeShare{NodeId{1}, 2}));
  const Placement spill = p.select_release(7);
  ASSERT_EQ(spill.shares.size(), 2u);
  EXPECT_EQ(spill.shares[0], (NodeShare{NodeId{1}, 3}));
  EXPECT_EQ(spill.shares[1], (NodeShare{NodeId{2}, 4}));
}

TEST(Cluster, ReleaseAllReturnsSharesInNodeIdOrder) {
  Cluster c = make(4, 8);
  // Spread scatters the job across nodes 3, 2, 1 (emptiest-first ties
  // break ascending, all equal => 0,1,2); use two jobs to force a
  // non-trivial order.
  ASSERT_TRUE(c.allocate(JobId{9}, 4).has_value());
  ASSERT_TRUE(c.allocate(JobId{1}, 18, AllocationPolicy::Spread).has_value());
  const Placement freed = c.release_all(JobId{1});
  EXPECT_EQ(freed.total_cores(), 18);
  for (std::size_t i = 1; i < freed.shares.size(); ++i)
    EXPECT_LT(freed.shares[i - 1].node, freed.shares[i].node);
  EXPECT_EQ(c.held_by(JobId{1}), 0);
  EXPECT_EQ(c.held_by(JobId{9}), 4);
}

TEST(Cluster, SharesOfExposesPerJobIndex) {
  Cluster c = make(4, 8);
  EXPECT_EQ(c.shares_of(JobId{1}), nullptr);
  ASSERT_TRUE(c.allocate(JobId{1}, 12).has_value());
  const auto* shares = c.shares_of(JobId{1});
  ASSERT_NE(shares, nullptr);
  CoreCount total = 0;
  for (const NodeShare& s : *shares) total += s.cores;
  EXPECT_EQ(total, 12);
  c.release_all(JobId{1});
  EXPECT_EQ(c.shares_of(JobId{1}), nullptr);
}

TEST(Cluster, UnknownNodeRejected) {
  Cluster c = make(2, 8);
  EXPECT_THROW((void)c.node(NodeId{5}), precondition_error);
}

}  // namespace
}  // namespace dbs::cluster
