// The O(1) used/free aggregates (CoreLedger) must stay consistent with a
// full node scan through every mutation path: allocate/release, chunked
// placement, release on a Down node (the server's fail-node path), offline
// transitions and restores, and dynamic grow/shrink sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"

namespace dbs::cluster {
namespace {

CoreCount scan_used(const Cluster& c) {
  CoreCount used = 0;
  for (const Node& n : c.nodes()) used += n.used_cores();
  return used;
}

CoreCount scan_free(const Cluster& c) {
  CoreCount free = 0;
  for (const Node& n : c.nodes())
    if (n.available()) free += n.free_cores();
  return free;
}

void expect_consistent(const Cluster& c) {
  EXPECT_EQ(c.used_cores(), scan_used(c));
  EXPECT_EQ(c.free_cores(), scan_free(c));
  c.check_invariants();
}

TEST(ClusterAggregates, AllocateReleaseSequence) {
  Cluster c(ClusterSpec{4, 8});
  expect_consistent(c);

  const auto p1 = c.allocate(JobId{1}, 5);
  ASSERT_TRUE(p1.has_value());
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 5);

  const auto p2 = c.allocate(JobId{2}, 20);
  ASSERT_TRUE(p2.has_value());
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 25);
  EXPECT_EQ(c.free_cores(), 7);

  c.release(JobId{1}, *p1);
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 20);

  c.release_all(JobId{2});
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 0);
  EXPECT_EQ(c.free_cores(), 32);
}

TEST(ClusterAggregates, FailedAllocationLeavesAggregatesUntouched) {
  Cluster c(ClusterSpec{2, 8});
  ASSERT_TRUE(c.allocate(JobId{1}, 10).has_value());
  EXPECT_FALSE(c.allocate(JobId{2}, 7).has_value());
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 10);
  EXPECT_EQ(c.free_cores(), 6);
}

TEST(ClusterAggregates, ChunkedPlacement) {
  Cluster c(ClusterSpec{4, 8});
  // nodes=3:ppn=4 plus a remainder chunk of 2.
  const auto p = c.allocate_chunked(JobId{1}, 14, 4);
  ASSERT_TRUE(p.has_value());
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 14);

  // Fragmentation failure must allocate nothing.
  EXPECT_FALSE(c.allocate_chunked(JobId{2}, 16, 8).has_value());
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 14);

  c.release(JobId{1}, *p);
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 0);
}

TEST(ClusterAggregates, DownNodeExcludedFromFree) {
  Cluster c(ClusterSpec{3, 8});
  ASSERT_TRUE(c.allocate(JobId{1}, 6).has_value());
  expect_consistent(c);

  const NodeId down = c.nodes()[0].id();
  ASSERT_EQ(c.node(down).used_cores(), 6);
  c.set_node_state(down, NodeState::Down);
  expect_consistent(c);
  // The down node's 2 idle cores left the free pool; its 6 used cores are
  // still accounted as used until released.
  EXPECT_EQ(c.used_cores(), 6);
  EXPECT_EQ(c.free_cores(), 16);
}

TEST(ClusterAggregates, ReleaseOnDownNodeCreditsUnavailablePool) {
  // The server's fail-node path: mark the node Down, then release the lost
  // job's cores while the node is still Down. Those cores must not reappear
  // as free.
  Cluster c(ClusterSpec{3, 8});
  ASSERT_TRUE(c.allocate(JobId{1}, 6).has_value());
  const NodeId down = c.nodes()[0].id();
  c.set_node_state(down, NodeState::Down);

  c.node(down).release_all(JobId{1});
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 0);
  EXPECT_EQ(c.free_cores(), 16);

  // Node repaired: its capacity rejoins the free pool.
  c.set_node_state(down, NodeState::Up);
  expect_consistent(c);
  EXPECT_EQ(c.free_cores(), 24);
}

TEST(ClusterAggregates, OfflineAndRestore) {
  Cluster c(ClusterSpec{4, 8});
  ASSERT_TRUE(c.allocate(JobId{1}, 3).has_value());
  const NodeId id = c.nodes()[1].id();

  c.set_node_state(id, NodeState::Offline);
  expect_consistent(c);
  EXPECT_EQ(c.free_cores(), 21);

  // Offline -> Down -> Up: each transition re-derives the pools correctly.
  c.set_node_state(id, NodeState::Down);
  expect_consistent(c);
  EXPECT_EQ(c.free_cores(), 21);

  c.set_node_state(id, NodeState::Up);
  expect_consistent(c);
  EXPECT_EQ(c.free_cores(), 29);
}

TEST(ClusterAggregates, GrowShrinkSequence) {
  // dyn_join / dyn_disjoin shape: a job grows by extra allocations and
  // shrinks by partial releases of what it holds.
  Cluster c(ClusterSpec{4, 8});
  const auto base = c.allocate(JobId{9}, 8);
  ASSERT_TRUE(base.has_value());
  expect_consistent(c);

  const auto grow = c.allocate(JobId{9}, 6);  // dyn_join grant
  ASSERT_TRUE(grow.has_value());
  expect_consistent(c);
  EXPECT_EQ(c.held_by(JobId{9}), 14);
  EXPECT_EQ(c.used_cores(), 14);

  c.release(JobId{9}, *grow);  // dyn_disjoin
  expect_consistent(c);
  EXPECT_EQ(c.held_by(JobId{9}), 8);

  c.release(JobId{9}, *base);
  expect_consistent(c);
  EXPECT_EQ(c.used_cores(), 0);
}

TEST(ClusterAggregates, CopyAndMoveRebindLedger) {
  Cluster a(ClusterSpec{3, 8});
  ASSERT_TRUE(a.allocate(JobId{1}, 5).has_value());

  Cluster b = a;  // copy: nodes must point at b's ledger, not a's
  ASSERT_TRUE(b.allocate(JobId{2}, 4).has_value());
  expect_consistent(a);
  expect_consistent(b);
  EXPECT_EQ(a.used_cores(), 5);
  EXPECT_EQ(b.used_cores(), 9);

  Cluster m = std::move(b);
  ASSERT_TRUE(m.allocate(JobId{3}, 2).has_value());
  expect_consistent(m);
  EXPECT_EQ(m.used_cores(), 11);

  a = m;  // copy-assign
  a.release_all(JobId{3});
  expect_consistent(a);
  expect_consistent(m);
  EXPECT_EQ(a.used_cores(), 9);
  EXPECT_EQ(m.used_cores(), 11);
}

TEST(ClusterAggregates, RandomizedMutationStorm) {
  Rng rng(20260806);
  Cluster c(ClusterSpec{8, 8});
  std::vector<JobId> live;
  for (int step = 0; step < 500; ++step) {
    switch (rng.next_int(0, 4)) {
      case 0:
      case 1: {  // allocate a new job
        const JobId j{static_cast<std::uint64_t>(step) + 1};
        const auto cores = static_cast<CoreCount>(rng.next_int(1, 12));
        if (c.allocate(j, cores).has_value()) live.push_back(j);
        break;
      }
      case 2: {  // release a random live job entirely
        if (live.empty()) break;
        const auto pick =
            static_cast<std::size_t>(rng.next_below(live.size()));
        c.release_all(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        break;
      }
      case 3: {  // chunked allocation
        const JobId j{static_cast<std::uint64_t>(step) + 1};
        if (c.allocate_chunked(j, 10, 4).has_value()) live.push_back(j);
        break;
      }
      case 4: {  // bounce a random node's state
        const auto idx =
            static_cast<std::size_t>(rng.next_below(c.node_count()));
        const NodeId id = c.nodes()[idx].id();
        const NodeState s = c.nodes()[idx].available()
                                ? (rng.next_int(0, 1) ? NodeState::Down
                                                      : NodeState::Offline)
                                : NodeState::Up;
        c.set_node_state(id, s);
        break;
      }
    }
    ASSERT_EQ(c.used_cores(), scan_used(c)) << "step " << step;
    ASSERT_EQ(c.free_cores(), scan_free(c)) << "step " << step;
    c.check_invariants();
  }
}

}  // namespace
}  // namespace dbs::cluster
