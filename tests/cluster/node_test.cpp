#include "cluster/node.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::cluster {
namespace {

TEST(Node, StartsEmpty) {
  const Node n(NodeId{0}, 8);
  EXPECT_EQ(n.total_cores(), 8);
  EXPECT_EQ(n.used_cores(), 0);
  EXPECT_EQ(n.free_cores(), 8);
  EXPECT_TRUE(n.available());
}

TEST(Node, AllocateAndRelease) {
  Node n(NodeId{0}, 8);
  n.allocate(JobId{1}, 3);
  EXPECT_EQ(n.free_cores(), 5);
  EXPECT_EQ(n.held_by(JobId{1}), 3);
  n.allocate(JobId{2}, 5);
  EXPECT_EQ(n.free_cores(), 0);
  n.release(JobId{1}, 3);
  EXPECT_EQ(n.free_cores(), 3);
  EXPECT_EQ(n.held_by(JobId{1}), 0);
}

TEST(Node, AdditiveAllocationSameJob) {
  Node n(NodeId{0}, 8);
  n.allocate(JobId{1}, 2);
  n.allocate(JobId{1}, 3);
  EXPECT_EQ(n.held_by(JobId{1}), 5);
  EXPECT_EQ(n.job_count(), 1u);
}

TEST(Node, OversubscriptionRejected) {
  Node n(NodeId{0}, 8);
  n.allocate(JobId{1}, 8);
  EXPECT_THROW(n.allocate(JobId{2}, 1), precondition_error);
}

TEST(Node, ReleaseMoreThanHeldRejected) {
  Node n(NodeId{0}, 8);
  n.allocate(JobId{1}, 2);
  EXPECT_THROW(n.release(JobId{1}, 3), precondition_error);
  EXPECT_THROW(n.release(JobId{2}, 1), precondition_error);
}

TEST(Node, ReleaseAll) {
  Node n(NodeId{0}, 8);
  n.allocate(JobId{1}, 5);
  EXPECT_EQ(n.release_all(JobId{1}), 5);
  EXPECT_EQ(n.release_all(JobId{1}), 0);
  EXPECT_EQ(n.free_cores(), 8);
}

TEST(Node, DownNodeHasNoFreeCores) {
  Node n(NodeId{0}, 8);
  n.allocate(JobId{1}, 2);
  n.set_state(NodeState::Down);
  EXPECT_EQ(n.free_cores(), 0);
  EXPECT_EQ(n.used_cores(), 2);  // existing allocation still accounted
  EXPECT_THROW(n.allocate(JobId{2}, 1), precondition_error);
  n.set_state(NodeState::Up);
  EXPECT_EQ(n.free_cores(), 6);
}

TEST(Node, InvalidConstruction) {
  EXPECT_THROW(Node(NodeId{0}, 0), precondition_error);
}

TEST(Node, ZeroAllocationRejected) {
  Node n(NodeId{0}, 8);
  EXPECT_THROW(n.allocate(JobId{1}, 0), precondition_error);
}

}  // namespace
}  // namespace dbs::cluster
