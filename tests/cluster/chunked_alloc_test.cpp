// Torque-style nodes=N:ppn=P chunked placement — including the node-level
// fragmentation behaviour the paper's evaluation hinges on.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/assert.hpp"

namespace dbs::cluster {
namespace {

Cluster make(std::size_t nodes = 4, CoreCount cpn = 8) {
  return Cluster(ClusterSpec{nodes, cpn});
}

TEST(ChunkedAlloc, WholeNodeChunks) {
  Cluster c = make(4, 8);
  const auto p = c.allocate_chunked(JobId{1}, 24, 8);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_count(), 3u);
  for (const auto& s : p->shares) EXPECT_EQ(s.cores, 8);
}

TEST(ChunkedAlloc, RemainderChunk) {
  Cluster c = make(4, 8);
  const auto p = c.allocate_chunked(JobId{1}, 20, 8);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_count(), 3u);  // 8 + 8 + 4
  EXPECT_EQ(p->total_cores(), 20);
}

TEST(ChunkedAlloc, SmallRequestSharesNode) {
  Cluster c = make(2, 8);
  ASSERT_TRUE(c.allocate_chunked(JobId{1}, 4, 8).has_value());
  const auto p = c.allocate_chunked(JobId{2}, 4, 8);
  ASSERT_TRUE(p.has_value());
  // Best fit packs the second 4-core chunk onto the half-used node.
  EXPECT_EQ(c.nodes()[0].used_cores(), 8);
  EXPECT_EQ(c.nodes()[1].used_cores(), 0);
}

TEST(ChunkedAlloc, FragmentationDefeatsAggregateCapacity) {
  // Two nodes, each with 4 cores busy: 8 cores free in aggregate, but an
  // 8-core ppn=8 chunk needs one fully free node.
  Cluster c = make(2, 8);
  ASSERT_TRUE(c.allocate_chunked(JobId{1}, 4, 8).has_value());
  ASSERT_TRUE(c.allocate_chunked(JobId{2}, 4, 4).has_value());
  ASSERT_EQ(c.nodes()[0].free_cores() + c.nodes()[1].free_cores(), 8);
  // With best-fit both 4-core chunks packed onto node 0; force the split.
  if (c.nodes()[1].free_cores() == 8) {
    c.release_all(JobId{2});
    ASSERT_TRUE(c.allocate(JobId{2}, 4, AllocationPolicy::Spread).has_value());
  }
  ASSERT_EQ(c.nodes()[0].free_cores(), 4);
  ASSERT_EQ(c.nodes()[1].free_cores(), 4);
  EXPECT_FALSE(c.can_allocate_chunked(8, 8));
  EXPECT_FALSE(c.allocate_chunked(JobId{3}, 8, 8).has_value());
  // A 4-core chunk still fits — exactly the gap a +4-core dynamic request
  // exploits.
  EXPECT_TRUE(c.can_allocate_chunked(4, 8));
}

TEST(ChunkedAlloc, DistinctNodesPerChunk) {
  Cluster c = make(4, 8);
  const auto p = c.allocate_chunked(JobId{1}, 16, 8);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->shares.size(), 2u);
  EXPECT_NE(p->shares[0].node, p->shares[1].node);
}

TEST(ChunkedAlloc, SmallPpnSplitsFiner) {
  Cluster c = make(4, 8);
  const auto p = c.allocate_chunked(JobId{1}, 16, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->shares.size(), 4u);  // four 4-core chunks on distinct nodes
}

TEST(ChunkedAlloc, FailureAllocatesNothing) {
  Cluster c = make(2, 8);
  ASSERT_TRUE(c.allocate_chunked(JobId{1}, 12, 8).has_value());
  EXPECT_FALSE(c.allocate_chunked(JobId{2}, 8, 8).has_value());
  EXPECT_EQ(c.held_by(JobId{2}), 0);
  EXPECT_EQ(c.free_cores(), 4);
}

TEST(ChunkedAlloc, InvalidPpnRejected) {
  Cluster c = make(2, 8);
  EXPECT_THROW((void)c.allocate_chunked(JobId{1}, 8, 0), precondition_error);
  EXPECT_THROW((void)c.allocate_chunked(JobId{1}, 8, 9), precondition_error);
  EXPECT_THROW((void)c.can_allocate_chunked(0, 8), precondition_error);
}

TEST(ChunkedAlloc, BestFitLeavesWholeNodesForBigChunks) {
  Cluster c = make(3, 8);
  ASSERT_TRUE(c.allocate_chunked(JobId{1}, 6, 8).has_value());  // node A: 2 free
  // A 2-core request should land in the 2-core hole, not break a fresh node.
  ASSERT_TRUE(c.allocate_chunked(JobId{2}, 2, 8).has_value());
  EXPECT_TRUE(c.can_allocate_chunked(16, 8));
}

}  // namespace
}  // namespace dbs::cluster
