#include "amr/quadtree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

namespace dbs::amr {
namespace {

TEST(QuadTree, InitialUniformGrid) {
  EXPECT_EQ(QuadTree(0).cell_count(), 1u);
  EXPECT_EQ(QuadTree(1).cell_count(), 4u);
  EXPECT_EQ(QuadTree(3).cell_count(), 64u);
  EXPECT_EQ(QuadTree(3).depth(), 3);
}

TEST(QuadTree, RefineAllQuadruples) {
  QuadTree t(2);
  const std::size_t split =
      t.refine_where([](const Cell&) { return true; }, 10);
  EXPECT_EQ(split, 16u);
  EXPECT_EQ(t.cell_count(), 64u);
}

TEST(QuadTree, MaxDepthStopsRefinement) {
  QuadTree t(2);
  EXPECT_EQ(t.refine_where([](const Cell&) { return true; }, 2), 0u);
  EXPECT_EQ(t.cell_count(), 16u);
}

TEST(QuadTree, OnePassDoesNotRefineFreshChildren) {
  QuadTree t(0);
  // If fresh children were revisited, one pass would go straight to depth 5.
  t.refine_where([](const Cell&) { return true; }, 5);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.cell_count(), 4u);
}

TEST(QuadTree, SelectiveRefinement) {
  QuadTree t(2);  // 16 cells of size 0.25
  const std::size_t split = t.refine_where(
      [](const Cell& c) { return c.y < 0.25; }, 10);
  EXPECT_EQ(split, 4u);  // bottom row only
  EXPECT_EQ(t.cell_count(), 16u + 3u * 4u);
}

TEST(QuadTree, LeavesPartitionTheDomain) {
  QuadTree t(1);
  t.refine_where([](const Cell& c) { return c.x < 0.5; }, 3);
  double area = 0.0;
  t.for_each_leaf([&](const Cell& c) { area += c.size * c.size; });
  EXPECT_NEAR(area, 1.0, 1e-12);
}

TEST(QuadTree, ChildGeometry) {
  QuadTree t(0);
  t.refine_where([](const Cell&) { return true; }, 1);
  t.for_each_leaf([](const Cell& c) {
    EXPECT_EQ(c.depth, 1);
    EXPECT_DOUBLE_EQ(c.size, 0.5);
    EXPECT_TRUE((std::abs(c.x - 0.25) < 1e-12 || std::abs(c.x - 0.75) < 1e-12));
    EXPECT_TRUE((std::abs(c.y - 0.25) < 1e-12 || std::abs(c.y - 0.75) < 1e-12));
  });
}

TEST(QuadTree, Validation) {
  EXPECT_THROW(QuadTree(-1), precondition_error);
  EXPECT_THROW(QuadTree(13), precondition_error);
  QuadTree t(0);
  EXPECT_THROW(t.refine_where(nullptr, 3), precondition_error);
}

}  // namespace
}  // namespace dbs::amr
