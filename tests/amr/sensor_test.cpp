#include "amr/sensor.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::amr {
namespace {

Cell cell(double x, double y, double size = 0.01) {
  return Cell{x, y, size, 5};
}

TEST(BoundaryLayerSensor, DecaysAwayFromWall) {
  const Sensor s = boundary_layer_sensor(0.1);
  EXPECT_GT(s(cell(0.5, 0.005)), 0.9);
  EXPECT_GT(s(cell(0.5, 0.05)), s(cell(0.5, 0.5)));
  EXPECT_LT(s(cell(0.5, 0.9)), 1e-3);
}

TEST(BoundaryLayerSensor, CellTouchingWallSaturates) {
  const Sensor s = boundary_layer_sensor(0.1);
  // Cell centre at its half-size above the wall: wall distance zero.
  EXPECT_DOUBLE_EQ(s(cell(0.3, 0.05, 0.1)), 1.0);
}

TEST(BowShockSensor, PeaksOnTheFront) {
  const Sensor s = bow_shock_sensor(0.7, 0.5, 0.28, 0.05);
  // A point on the shock arc, upstream.
  EXPECT_GT(s(cell(0.7 - 0.28, 0.5)), 0.9);
  // Far from the front.
  EXPECT_LT(s(cell(0.1, 0.1)), 0.05);
}

TEST(BowShockSensor, DownstreamIsQuiet) {
  const Sensor s = bow_shock_sensor(0.7, 0.5, 0.28, 0.05);
  EXPECT_DOUBLE_EQ(s(cell(0.95, 0.5)), 0.0);
}

TEST(BowShockSensor, CoarseCellOverlappingFrontRegisters) {
  const Sensor s = bow_shock_sensor(0.7, 0.5, 0.28, 0.02);
  // Centre is 0.1 off the front but the cell is huge.
  EXPECT_GT(s(cell(0.7 - 0.38, 0.5, 0.3)), 0.5);
}

TEST(CombineMax, TakesPointwiseMaximum) {
  const Sensor s = combine_max(boundary_layer_sensor(0.05),
                               bow_shock_sensor(0.7, 0.5, 0.28, 0.05));
  EXPECT_GT(s(cell(0.5, 0.001)), 0.9);       // wall
  EXPECT_GT(s(cell(0.7 - 0.28, 0.5)), 0.9);  // shock
}

TEST(Sensors, Validation) {
  EXPECT_THROW((void)boundary_layer_sensor(0.0), precondition_error);
  EXPECT_THROW((void)bow_shock_sensor(0.5, 0.5, -1.0, 0.1),
               precondition_error);
  EXPECT_THROW((void)combine_max(nullptr, boundary_layer_sensor(0.1)),
               precondition_error);
}

}  // namespace
}  // namespace dbs::amr
