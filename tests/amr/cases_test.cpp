// The calibrated Quadflow cases must keep the properties the paper's Fig. 7
// depends on: the cells-per-process threshold is crossed by the final
// adaptation and only by it.
#include "amr/cases.hpp"

#include <gtest/gtest.h>

namespace dbs::amr {
namespace {

void expect_trigger_only_at_final(const QuadflowCase& c, int procs) {
  const double limit = c.threshold_cells_per_proc * procs;
  ASSERT_GE(c.cells_per_phase.size(), 2u);
  for (std::size_t p = 0; p + 1 < c.cells_per_phase.size(); ++p)
    EXPECT_LE(static_cast<double>(c.cells_per_phase[p]), limit)
        << c.name << " phase " << p;
  EXPECT_GT(static_cast<double>(c.cells_per_phase.back()), limit) << c.name;
}

TEST(Cases, FlatPlateShape) {
  const QuadflowCase c = flat_plate_case();
  EXPECT_EQ(c.cells_per_phase.size(), 3u);  // 2 adaptations
  expect_trigger_only_at_final(c, 16);
  EXPECT_DOUBLE_EQ(c.threshold_cells_per_proc, 3000.0);
}

TEST(Cases, CylinderShape) {
  const QuadflowCase c = cylinder_case();
  EXPECT_EQ(c.cells_per_phase.size(), 6u);  // 5 adaptations
  expect_trigger_only_at_final(c, 16);
  EXPECT_DOUBLE_EQ(c.threshold_cells_per_proc, 15000.0);
}

TEST(Cases, SmallVariantsPreserveShape) {
  expect_trigger_only_at_final(flat_plate_case_small(), 16);
  expect_trigger_only_at_final(cylinder_case_small(), 16);
}

TEST(Cases, ComputationalIntensityRatio) {
  // §IV-A: FlatPlate with one cell ~ Cylinder with 4-5 cells.
  const double ratio = flat_plate_case().seconds_per_cell_iter /
                       cylinder_case().seconds_per_cell_iter;
  EXPECT_GE(ratio, 3.5);
  EXPECT_LE(ratio, 5.5);
}

TEST(Cases, Deterministic) {
  const QuadflowCase a = cylinder_case_small();
  const QuadflowCase b = cylinder_case_small();
  EXPECT_EQ(a.cells_per_phase, b.cells_per_phase);
}

TEST(Cases, GrowthIsMonotonic) {
  for (const QuadflowCase& c : {flat_plate_case(), cylinder_case()})
    for (std::size_t p = 1; p < c.cells_per_phase.size(); ++p)
      EXPECT_GT(c.cells_per_phase[p], c.cells_per_phase[p - 1]) << c.name;
}

}  // namespace
}  // namespace dbs::amr
