#include "amr/refinement.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::amr {
namespace {

TEST(Refinement, TraceShapes) {
  QuadTree grid(3);
  RefinementOptions opt;
  opt.adaptations = 3;
  opt.max_depth = 8;
  opt.threshold = 1e-3;
  const AdaptationTrace trace =
      run_adaptations(grid, boundary_layer_sensor(0.1), opt);
  ASSERT_EQ(trace.cells_per_phase.size(), 4u);
  ASSERT_EQ(trace.refined_per_adaptation.size(), 3u);
  EXPECT_EQ(trace.cells_per_phase[0], 64u);
  // Cell counts are non-decreasing (we only refine).
  for (std::size_t i = 1; i < trace.cells_per_phase.size(); ++i)
    EXPECT_GE(trace.cells_per_phase[i], trace.cells_per_phase[i - 1]);
  // Each refinement adds 3 cells per split.
  for (std::size_t i = 0; i < trace.refined_per_adaptation.size(); ++i)
    EXPECT_EQ(trace.cells_per_phase[i + 1],
              trace.cells_per_phase[i] + 3 * trace.refined_per_adaptation[i]);
}

TEST(Refinement, GrowthLocalizedNearFeature) {
  QuadTree grid(4);  // 256 cells
  RefinementOptions opt;
  opt.adaptations = 2;
  opt.max_depth = 9;
  opt.threshold = 5e-4;
  const AdaptationTrace trace =
      run_adaptations(grid, boundary_layer_sensor(0.05), opt);
  // Far fewer cells than uniform refinement (256 -> 4096 -> 65536).
  EXPECT_LT(trace.cells_per_phase.back(), 65536u / 4);
  EXPECT_GT(trace.cells_per_phase.back(), 256u);
}

TEST(Refinement, ScaleWeightedCriterionConverges) {
  QuadTree grid(2);
  RefinementOptions opt;
  opt.adaptations = 20;     // far more than needed
  opt.max_depth = 6;
  opt.threshold = 2e-2;     // coarse tolerance
  const AdaptationTrace trace =
      run_adaptations(grid, boundary_layer_sensor(0.1), opt);
  // Once cells resolve the feature, adaptation stops adding cells.
  const std::size_t final = trace.cells_per_phase.back();
  EXPECT_EQ(trace.cells_per_phase[trace.cells_per_phase.size() - 2], final);
}

TEST(Refinement, ZeroAdaptations) {
  QuadTree grid(2);
  const AdaptationTrace trace = run_adaptations(
      grid, boundary_layer_sensor(0.1), RefinementOptions{0, 5, 1e-3});
  EXPECT_EQ(trace.cells_per_phase.size(), 1u);
  EXPECT_TRUE(trace.refined_per_adaptation.empty());
}

TEST(Refinement, Validation) {
  QuadTree grid(1);
  RefinementOptions opt;
  opt.threshold = 0.0;
  EXPECT_THROW((void)run_adaptations(grid, boundary_layer_sensor(0.1), opt),
               precondition_error);
  opt.threshold = 1e-3;
  opt.adaptations = -1;
  EXPECT_THROW((void)run_adaptations(grid, boundary_layer_sensor(0.1), opt),
               precondition_error);
}

}  // namespace
}  // namespace dbs::amr
