// The incremental planning core: the persistent physical profile, the
// plan-cache tail verdicts and the priority-order cache must be invisible
// — every structure byte-identical to its from-scratch rebuild, every
// decision stream byte-identical to the uncached pipeline.
//
// The storm tests run paired BatchSystems over seeded random workloads
// with grant/release/failure churn: one with incremental planning plus
// check_invariants (which asserts profile and priority-order equality
// inside every iteration), one with the from-scratch path, and compare
// the full decision traces byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../testutil.hpp"
#include "batch/batch_system.hpp"
#include "core/availability_profile.hpp"
#include "core/backfill.hpp"
#include "core/plan_cache.hpp"
#include "core/priority.hpp"
#include "core/priority_cache.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "workload/synthetic.hpp"

namespace dbs::core {
namespace {

Time at(long s) { return Time::from_seconds(s); }

// --- AvailabilityProfile incremental primitives ---------------------------

TEST(IncrementalProfile, AdvanceOriginDropsPastBreakpoints) {
  AvailabilityProfile p(at(0), 64);
  p.subtract(at(10), at(20), 16);
  p.subtract(at(30), at(40), 32);
  p.advance_origin(at(25));
  EXPECT_EQ(p.origin(), at(25));
  EXPECT_EQ(p.free_at(at(25)), 64);
  EXPECT_EQ(p.free_at(at(35)), 32);
  const auto bps = p.breakpoints();
  ASSERT_FALSE(bps.empty());
  EXPECT_EQ(bps.front().first, at(25));
  // Advancing into the middle of a hold keeps its remainder.
  p.advance_origin(at(35));
  EXPECT_EQ(p.free_at(at(35)), 32);
  EXPECT_EQ(p.free_at(at(40)), 64);
  // Advancing to the current origin is a no-op.
  const AvailabilityProfile before = p;
  p.advance_origin(at(35));
  EXPECT_EQ(p, before);
}

TEST(IncrementalProfile, CoalesceMergesEqualRuns) {
  AvailabilityProfile p(at(0), 64);
  p.subtract(at(10), at(20), 16);
  p.add(at(10), at(20), 16);  // leaves two redundant breakpoints behind
  EXPECT_GT(p.step_count(), 1u);
  p.coalesce();
  EXPECT_EQ(p.step_count(), 1u);
  EXPECT_EQ(p, AvailabilityProfile(at(0), 64));
}

TEST(IncrementalProfile, EqualityIsStructural) {
  AvailabilityProfile a(at(0), 64);
  AvailabilityProfile b(at(0), 64);
  EXPECT_EQ(a, b);
  a.subtract(at(5), at(10), 8);
  EXPECT_NE(a, b);
  b.subtract(at(5), at(10), 8);
  EXPECT_EQ(a, b);
  AvailabilityProfile c(at(1), 64);
  EXPECT_NE(a, c);
}

TEST(IncrementalProfile, AppendFastPathMatchesGenericLayout) {
  // Same two disjoint holds, subtracted in append order (fast path twice)
  // and in reverse order (append, then a generic mid-vector insert); the
  // final representation must be identical, not just pointwise equal.
  AvailabilityProfile fwd(at(0), 64);
  fwd.subtract(at(10), at(20), 16);
  fwd.subtract(at(30), at(40), 8);
  AvailabilityProfile rev(at(0), 64);
  rev.subtract(at(30), at(40), 8);
  rev.subtract(at(10), at(20), 16);
  EXPECT_EQ(fwd, rev);
  const std::vector<std::pair<Time, CoreCount>> expected{
      {at(0), 64},  {at(10), 48}, {at(20), 64},
      {at(30), 56}, {at(40), 64}};
  EXPECT_EQ(fwd.breakpoints(), expected);
  for (long t : {0, 10, 15, 20, 30, 35, 40, 50})
    EXPECT_EQ(fwd.free_at(at(t)), rev.free_at(at(t))) << t;
}

TEST(IncrementalProfile, FarFutureSubtractUsesAppendPath) {
  AvailabilityProfile p(at(0), 64);
  p.subtract(at(0), Time::far_future(), 16);  // the down-node block shape
  EXPECT_EQ(p.free_at(at(0)), 48);
  EXPECT_EQ(p.min_free(at(0), at(1000000)), 48);
  p.add(at(0), Time::far_future(), 16);
  p.coalesce();
  EXPECT_EQ(p, AvailabilityProfile(at(0), 64));
}

// --- PlanCache staircase ---------------------------------------------------

TEST(PlanCache, StaircaseAnswersMinFree) {
  AvailabilityProfile p(at(0), 64);
  p.subtract(at(0), at(100), 16);
  p.subtract(at(50), at(200), 8);
  p.subtract(at(300), at(400), 40);
  PlanCache cache;
  cache.refresh(p, at(0));
  for (long w : {1, 50, 100, 150, 200, 250, 300, 350, 400, 500})
    EXPECT_EQ(cache.min_for(Duration::seconds(w)),
              p.min_free(at(0), at(0) + Duration::seconds(w)))
        << w;
}

TEST(PlanCache, InternedVersionsAreStableAcrossCycles) {
  AvailabilityProfile base(at(0), 64);
  base.subtract(at(0), at(100), 16);
  PlanCache cache;
  cache.refresh(base, at(0));
  const std::uint64_t v_base = cache.version;

  AvailabilityProfile mutated = base;
  mutated.subtract(at(0), at(10), 8);  // a planned backfill dirties the tail
  cache.refresh(mutated, at(0));
  const std::uint64_t v_mut = cache.version;
  EXPECT_NE(v_base, v_mut);

  // Next iteration replays the same walk: both staircases re-yield their
  // original versions, so verdicts recorded against them stay valid.
  cache.refresh(base, at(0));
  EXPECT_EQ(cache.version, v_base);
  cache.refresh(mutated, at(0));
  EXPECT_EQ(cache.version, v_mut);
  // An unchanged profile never bumps.
  cache.refresh(mutated, at(0));
  EXPECT_EQ(cache.version, v_mut);
}

// --- Cached planning walk differential ------------------------------------

TEST(PlanCacheDifferential, CachedTailMatchesUncachedWalk) {
  test::BareSystem sys(8, 8);
  std::vector<JobId> ids;
  // A mix that forces a deep tail: big jobs exhaust the reservation budget
  // early, small ones behind them can only backfill or wait.
  for (int i = 0; i < 40; ++i) {
    const CoreCount cores = (i % 7 == 0) ? 64 : (i % 3 == 0 ? 48 : 4);
    const Duration wall = Duration::minutes(5 + (i * 13) % 50);
    ids.push_back(sys.server.submit(
        test::spec("j" + std::to_string(i), cores, wall,
                   i % 2 ? "alice" : "bob"),
        test::rigid(wall)));
  }
  std::vector<const rms::Job*> prioritized;
  for (const JobId id : ids) prioritized.push_back(&sys.server.job(id));

  AvailabilityProfile base(at(0), 64);
  base.subtract(at(0), at(1800), 52);  // running load: only 12 cores free

  PlanCache cache;
  Plan cached, plain;
  for (int pass = 0; pass < 4; ++pass) {
    // Re-plan the same state repeatedly (the steady-state iteration):
    // pass 0 fills the cache, later passes reuse its verdicts.
    PlanOptions options{at(0), 2, /*allow_backfill=*/true, false};
    plan_jobs_into(prioritized, base, options, cached, &cache);
    plan_jobs_into(prioritized, base, options, plain, nullptr);
    ASSERT_EQ(cached.table.items().size(), plain.table.items().size()) << pass;
    for (std::size_t i = 0; i < plain.table.items().size(); ++i) {
      const Reservation& a = cached.table.items()[i];
      const Reservation& b = plain.table.items()[i];
      EXPECT_EQ(a.job, b.job) << pass << ":" << i;
      EXPECT_EQ(a.start, b.start) << pass << ":" << i;
      EXPECT_EQ(a.end, b.end) << pass << ":" << i;
      EXPECT_EQ(a.cores, b.cores) << pass << ":" << i;
      EXPECT_EQ(a.start_now, b.start_now) << pass << ":" << i;
      EXPECT_EQ(a.backfilled, b.backfilled) << pass << ":" << i;
    }
    EXPECT_EQ(cached.profile, plain.profile) << pass;
  }
  EXPECT_GT(cache.hits, 0u);
}

// --- Priority-order cache differential ------------------------------------

TEST(PriorityOrderCache, MatchesFullSortUnderChurn) {
  test::BareSystem sys(1, 4);
  PriorityWeights weights;
  weights.queue_time_per_minute = 1.0;
  weights.xfactor = 5.0;  // short-walltime jobs overtake over time
  weights.per_core = 0.1;
  weights.cred = 2.0;
  CredPriorities cred;
  cred.user["alice"] = 10.0;
  cred.user["bob"] = -5.0;
  const PriorityEngine engine(weights, cred, nullptr);
  PriorityOrderCache cache;

  std::vector<JobId> ids;
  int submitted = 0;
  const auto submit = [&](Duration wall, CoreCount cores, const char* user) {
    // 64-core asks on a 4-core machine: jobs stay queued forever.
    ids.push_back(sys.server.submit(
        test::spec("p" + std::to_string(submitted++), cores, wall, user),
        test::rigid(wall)));
  };
  for (int i = 0; i < 24; ++i)
    submit(Duration::minutes(2 + (i * 17) % 45), 64,
           i % 3 ? "alice" : "bob");

  for (int pass = 0; pass < 30; ++pass) {
    const Time now = sys.sim.now();
    std::vector<const rms::Job*> incremental = sys.server.jobs().queued();
    std::vector<const rms::Job*> reference =
        engine.prioritize(sys.server.jobs().queued(), now);
    cache.order(incremental, engine, now);
    ASSERT_EQ(incremental, reference) << "pass " << pass;

    // Churn: arrivals, departures, and enough time for xfactor drift to
    // reorder neighbours (exercising the full-sort fallback).
    if (pass % 3 == 0) submit(Duration::minutes(1 + pass), 64, "bob");
    if (pass % 4 == 1 && !ids.empty()) {
      sys.server.cancel(ids.back());
      ids.pop_back();
    }
    sys.sim.run_until(now + Duration::minutes(7));
  }
  // Both regimes must actually have been exercised.
  EXPECT_GT(cache.merged_passes(), 0u);
  EXPECT_GT(cache.resorted_passes(), 0u);
}

// --- Event-storm byte-identity --------------------------------------------

std::string drop_lines(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

/// One seeded storm: synthetic evolving workload plus node failures,
/// restores and cancels injected mid-run. check_invariants on the
/// incremental side asserts, inside every iteration, that the tracker
/// profile and the cached priority order equal their rebuilds.
std::string run_storm(std::uint64_t seed, bool incremental) {
  batch::SystemConfig cfg;
  cfg.cluster.node_count = 8;
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 1 + seed % 4;
  cfg.scheduler.reservation_delay_depth = 1 + seed % 5;
  cfg.scheduler.allow_preemption = seed % 2 == 0;
  cfg.scheduler.allow_malleable_steal = seed % 3 == 0;
  cfg.scheduler.dynamic_partition_cores = (seed % 4 == 1) ? 8 : 0;
  cfg.scheduler.incremental_planning = incremental;
  cfg.scheduler.check_invariants = incremental;

  wl::SyntheticParams wp;
  wp.job_count = 50;
  wp.total_cores = 64;
  wp.evolving_fraction = 0.5;
  wp.preemptible_fraction = cfg.scheduler.allow_preemption ? 0.4 : 0.0;
  wp.malleable_fraction = cfg.scheduler.allow_malleable_steal ? 0.4 : 0.0;
  wp.seed = 100 + seed;

  batch::BatchSystem sys(cfg);
  obs::Registry registry;
  std::ostringstream trace;
  obs::Tracer tracer;
  tracer.attach_stream(trace, obs::TraceFormat::Jsonl);
  sys.set_sinks({&tracer, &registry});
  sys.submit_workload(wl::generate_synthetic(wp));

  // Failure/restore churn on a rotating node, plus cancels of random jobs
  // (queued or running — both paths patch the tracker).
  const NodeId failing{seed % 8};
  sys.simulator().schedule_at(at(600 + static_cast<long>(seed) * 17), [&] {
    sys.server().node_failure(failing);
  });
  sys.simulator().schedule_at(at(1500 + static_cast<long>(seed) * 17), [&] {
    sys.server().restore_node(failing);
  });
  for (int k = 0; k < 4; ++k) {
    sys.simulator().schedule_at(
        at(400 + 500 * k + static_cast<long>(seed % 7) * 29), [&sys, k, seed] {
          sys.server().cancel(
              JobId{(seed * 7 + static_cast<std::uint64_t>(k) * 13) % 50});
        });
  }

  sys.run_until(Time::from_seconds(3 * 3600));
  tracer.close();
  return drop_lines(trace.str(), "wall_us");
}

class IncrementalStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalStorm, TraceIsByteIdenticalToRebuildPath) {
  const std::uint64_t seed = GetParam();
  EXPECT_EQ(run_storm(seed, true), run_storm(seed, false)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalStorm,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11));

}  // namespace
}  // namespace dbs::core
