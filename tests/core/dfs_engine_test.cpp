// The dynamic-fairness engine: permissions, single-job caps, cumulative
// target caps, interval decay, same-user exemption, most-restrictive rule.
#include "core/dfs_engine.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "rms/job.hpp"

namespace dbs::core {
namespace {

struct Fixture {
  std::vector<std::unique_ptr<rms::Job>> storage;

  const rms::Job* job(std::uint64_t id, std::string user,
                      std::string group = "grp") {
    rms::JobSpec s = test::spec("j" + std::to_string(id), 4,
                                Duration::minutes(10), std::move(user));
    s.cred.group = std::move(group);
    storage.push_back(std::make_unique<rms::Job>(
        JobId{id}, s, test::rigid(Duration::minutes(1)), Time::epoch()));
    return storage.back().get();
  }
};

Credentials requester(std::string user = "evolver") {
  return {std::move(user), "egrp", "", "batch", ""};
}

DelayedJob delayed(const rms::Job* j, std::int64_t seconds) {
  return {j, Duration::seconds(seconds)};
}

TEST(DfsEngine, PolicyNoneAllowsEverything) {
  Fixture f;
  DfsConfig cfg;  // policy None
  cfg.user["victim"] = {false, {}, {}};  // even a perm=0 user
  DfsEngine engine(cfg);
  EXPECT_EQ(engine.admit(requester(), {delayed(f.job(1, "victim"), 100000)}),
            DfsVerdict::Allowed);
}

TEST(DfsEngine, PermissionVetoes) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.user["victim"] = {false, {}, {}};
  DfsEngine engine(cfg);
  EXPECT_EQ(engine.admit(requester(), {delayed(f.job(1, "victim"), 1)}),
            DfsVerdict::DeniedPermission);
  // Zero-delay "victims" never matter.
  EXPECT_EQ(engine.admit(requester(), {delayed(f.job(2, "victim"), 0)}),
            DfsVerdict::Allowed);
}

TEST(DfsEngine, GroupPermissionVetoes) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.group["group06"] = {false, {}, {}};
  DfsEngine engine(cfg);
  EXPECT_EQ(engine.admit(requester(),
                         {delayed(f.job(1, "anyone", "group06"), 1)}),
            DfsVerdict::DeniedPermission);
}

TEST(DfsEngine, SameUserDelaysIgnored) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::SingleAndTargetDelay;
  cfg.defaults = {false, Duration::seconds(1), Duration::seconds(1)};
  DfsEngine engine(cfg);
  // The delayed job belongs to the requesting user: always fine.
  EXPECT_EQ(engine.admit(requester("selfish"),
                         {delayed(f.job(1, "selfish"), 100000)}),
            DfsVerdict::Allowed);
}

TEST(DfsEngine, SingleJobDelayCap) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::SingleJobDelay;
  cfg.user["victim"] = {true, Duration::seconds(1800), {}};
  DfsEngine engine(cfg);
  const rms::Job* j = f.job(1, "victim");
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 1800)}), DfsVerdict::Allowed);
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 1801)}),
            DfsVerdict::DeniedSingleDelay);
}

TEST(DfsEngine, SingleJobDelayAccumulatesPerJob) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::SingleJobDelay;
  cfg.user["victim"] = {true, Duration::seconds(1000), {}};
  DfsEngine engine(cfg);
  const rms::Job* j = f.job(1, "victim");
  ASSERT_EQ(engine.admit(requester(), {delayed(j, 600)}), DfsVerdict::Allowed);
  engine.commit(requester(), {delayed(j, 600)});
  EXPECT_EQ(engine.job_delay(JobId{1}), Duration::seconds(600));
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 500)}),
            DfsVerdict::DeniedSingleDelay);
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 400)}), DfsVerdict::Allowed);
}

TEST(DfsEngine, JobStartClearsSingleJobAccount) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::SingleJobDelay;
  DfsEngine engine(cfg);
  const rms::Job* j = f.job(1, "victim");
  engine.commit(requester(), {delayed(j, 600)});
  engine.on_job_started(JobId{1});
  EXPECT_EQ(engine.job_delay(JobId{1}), Duration::zero());
}

TEST(DfsEngine, TargetDelayCapsCumulativePerUser) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.defaults.target_delay = Duration::seconds(500);
  DfsEngine engine(cfg);
  const rms::Job* j1 = f.job(1, "victim");
  const rms::Job* j2 = f.job(2, "victim");
  // Two delays of the same user's jobs in one request sum up.
  EXPECT_EQ(engine.admit(requester(), {delayed(j1, 300), delayed(j2, 300)}),
            DfsVerdict::DeniedTargetDelay);
  ASSERT_EQ(engine.admit(requester(), {delayed(j1, 300), delayed(j2, 200)}),
            DfsVerdict::Allowed);
  engine.commit(requester(), {delayed(j1, 300), delayed(j2, 200)});
  EXPECT_EQ(engine.accumulated(DfsEntityKind::User, "victim"),
            Duration::seconds(500));
  EXPECT_EQ(engine.admit(requester(), {delayed(j1, 1)}),
            DfsVerdict::DeniedTargetDelay);
}

TEST(DfsEngine, TargetDelayPerGroupMostRestrictive) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.user["u1"] = {true, {}, Duration::seconds(10'000)};
  cfg.group["group05"] = {true, {}, Duration::seconds(400)};
  DfsEngine engine(cfg);
  const rms::Job* j = f.job(1, "u1", "group05");
  // The user limit would allow it; the group limit vetoes.
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 401)}),
            DfsVerdict::DeniedTargetDelay);
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 399)}), DfsVerdict::Allowed);
}

TEST(DfsEngine, ZeroLimitMeansUnlimited) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::SingleAndTargetDelay;
  cfg.user["free"] = {true, Duration::zero(), Duration::zero()};
  DfsEngine engine(cfg);
  EXPECT_EQ(engine.admit(requester(), {delayed(f.job(1, "free"), 1'000'000)}),
            DfsVerdict::Allowed);
}

TEST(DfsEngine, IntervalRollAppliesDecay) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.interval = Duration::hours(1);
  cfg.decay = 0.2;
  cfg.defaults.target_delay = Duration::seconds(4800);
  DfsEngine engine(cfg);
  const rms::Job* j = f.job(1, "victim");
  engine.commit(requester(), {delayed(j, 3600)});
  // The paper's example: decay 0.2 carries 20% of 3600 = 720 forward.
  engine.advance_to(Time::from_seconds(3601));
  EXPECT_EQ(engine.accumulated(DfsEntityKind::User, "victim"),
            Duration::seconds(720));
  // So up to 4080 more seconds of delay fit this interval.
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 4080)}), DfsVerdict::Allowed);
  EXPECT_EQ(engine.admit(requester(), {delayed(j, 4081)}),
            DfsVerdict::DeniedTargetDelay);
}

TEST(DfsEngine, MultipleIntervalsCompoundDecay) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.interval = Duration::hours(1);
  cfg.decay = 0.5;
  DfsEngine engine(cfg);
  engine.commit(requester(), {delayed(f.job(1, "victim"), 1000)});
  engine.advance_to(Time::from_seconds(2 * 3600 + 1));
  EXPECT_EQ(engine.accumulated(DfsEntityKind::User, "victim"),
            Duration::seconds(250));
}

TEST(DfsEngine, ZeroDecayResetsEachInterval) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.interval = Duration::hours(1);
  cfg.decay = 0.0;
  DfsEngine engine(cfg);
  engine.commit(requester(), {delayed(f.job(1, "victim"), 1000)});
  engine.advance_to(Time::from_seconds(3601));
  EXPECT_EQ(engine.accumulated(DfsEntityKind::User, "victim"),
            Duration::zero());
}

TEST(DfsEngine, CommitChargesAllDimensions) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  DfsEngine engine(cfg);
  engine.commit(requester(), {delayed(f.job(1, "u1", "g1"), 100)});
  EXPECT_EQ(engine.accumulated(DfsEntityKind::User, "u1"),
            Duration::seconds(100));
  EXPECT_EQ(engine.accumulated(DfsEntityKind::Group, "g1"),
            Duration::seconds(100));
  EXPECT_EQ(engine.accumulated(DfsEntityKind::JobClass, "batch"),
            Duration::seconds(100));
  EXPECT_EQ(engine.accumulated(DfsEntityKind::User, "other"),
            Duration::zero());
}

TEST(DfsEngine, NegativeDelaysIgnored) {
  Fixture f;
  DfsConfig cfg;
  cfg.policy = DfsPolicy::SingleAndTargetDelay;
  cfg.defaults = {true, Duration::seconds(10), Duration::seconds(10)};
  DfsEngine engine(cfg);
  const rms::Job* j = f.job(1, "victim");
  EXPECT_EQ(engine.admit(requester(), {{j, Duration::seconds(-50)}}),
            DfsVerdict::Allowed);
  engine.commit(requester(), {{j, Duration::seconds(-50)}});
  EXPECT_EQ(engine.accumulated(DfsEntityKind::User, "victim"),
            Duration::zero());
}

}  // namespace
}  // namespace dbs::core
