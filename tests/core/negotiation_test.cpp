#include "core/negotiation.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace dbs::core {
namespace {

Time at(std::int64_t s) { return Time::from_seconds(s); }

std::unique_ptr<rms::Job> running_job(Duration walltime, Time started) {
  auto job = std::make_unique<rms::Job>(
      JobId{1}, test::spec("j", 8, walltime), test::rigid(walltime),
      Time::epoch());
  job->mark_started(started, cluster::Placement{{{NodeId{0}, 8}}}, false);
  return job;
}

TEST(Negotiation, ImmediateWhenFree) {
  const AvailabilityProfile p(at(0), 32);
  const auto owner = running_job(Duration::minutes(10), at(0));
  EXPECT_EQ(estimate_availability(p, *owner, 4, at(100)), at(100));
}

TEST(Negotiation, WaitsForRunningJobToEnd) {
  AvailabilityProfile p(at(0), 32);
  p.subtract(at(0), at(500), 30);
  const auto owner = running_job(Duration::minutes(10), at(0));
  // 4 cores free continuously for the remaining walltime only after t=500.
  EXPECT_EQ(estimate_availability(p, *owner, 4, at(100)), at(500));
}

TEST(Negotiation, NulloptWhenImpossible) {
  const AvailabilityProfile p(at(0), 32);
  const auto owner = running_job(Duration::minutes(10), at(0));
  EXPECT_FALSE(estimate_availability(p, *owner, 33, at(0)).has_value());
}

TEST(Negotiation, RemainingWalltimeShrinksRequirement) {
  AvailabilityProfile p(at(0), 32);
  // 4 cores free only in the window [200, 350).
  p.subtract(at(0), at(200), 30);
  p.subtract(at(350), at(10'000), 30);
  const auto owner = running_job(Duration::seconds(300), at(0));
  // At t=100 the remaining walltime is 200s: the [200,350) window is too
  // short... remaining at t=200 is 100s, so the window fits from t=200.
  EXPECT_EQ(estimate_availability(p, *owner, 4, at(200)), at(200));
}

}  // namespace
}  // namespace dbs::core
