// Delay measurement: the heart of Algorithm 2's steps 11-14.
#include "core/delay_measurement.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace dbs::core {
namespace {

Time at(std::int64_t s) { return Time::from_seconds(s); }

struct Fixture {
  std::vector<std::unique_ptr<rms::Job>> storage;

  const rms::Job* queued(std::uint64_t id, CoreCount cores, Duration walltime) {
    storage.push_back(std::make_unique<rms::Job>(
        JobId{id}, test::spec("q" + std::to_string(id), cores, walltime),
        test::rigid(walltime), Time::epoch()));
    return storage.back().get();
  }

  const rms::Job* running(std::uint64_t id, CoreCount cores, Duration walltime,
                          Time started) {
    storage.push_back(std::make_unique<rms::Job>(
        JobId{id}, test::spec("r" + std::to_string(id), cores, walltime),
        test::rigid(walltime), Time::epoch()));
    storage.back()->mark_started(started,
                                 cluster::Placement{{{NodeId{0}, cores}}},
                                 false);
    return storage.back().get();
  }
};

TEST(MakeHold, CoversUntilWalltimeEnd) {
  Fixture f;
  const rms::Job* owner = f.running(1, 8, Duration::minutes(10), at(0));
  const rms::DynRequest req{RequestId{1}, JobId{1}, 4, at(100), 1, at(100)};
  const DynHold hold = make_hold(*owner, req, at(100));
  EXPECT_EQ(hold.extra_cores, 4);
  EXPECT_EQ(hold.from, at(100));
  EXPECT_EQ(hold.until, at(600));
}

TEST(MakeHold, NeverEmptyEvenAtWalltimeEnd) {
  Fixture f;
  const rms::Job* owner = f.running(1, 8, Duration::seconds(10), at(0));
  const rms::DynRequest req{RequestId{1}, JobId{1}, 4, at(50), 1, at(50)};
  const DynHold hold = make_hold(*owner, req, at(50));
  EXPECT_GT(hold.until, hold.from);
}

TEST(MeasureDynamicRequest, InfeasibleWithoutIdleCores) {
  Fixture f;
  const DynHold hold{4, at(0), at(600)};
  const DelayMeasurement m = measure_dynamic_request(
      hold, {}, {}, ReservationTable{}, AvailabilityProfile(at(0), 128),
      /*physical_free_now=*/3, {at(0), 5, true, false});
  EXPECT_FALSE(m.feasible);
  EXPECT_TRUE(m.delays.empty());
}

TEST(MeasureDynamicRequest, NoProtectedJobsNoDelays) {
  const DynHold hold{4, at(0), at(600)};
  const DelayMeasurement m = measure_dynamic_request(
      hold, {}, {}, ReservationTable{}, AvailabilityProfile(at(0), 128), 128,
      {at(0), 5, true, false});
  EXPECT_TRUE(m.feasible);
  EXPECT_TRUE(m.delays.empty());
  EXPECT_EQ(m.profile_after.free_at(at(0)), 124);
  EXPECT_EQ(m.profile_after.free_at(at(600)), 128);
}

TEST(MeasureDynamicRequest, DelayOfDisplacedReservation) {
  // Fig. 1 of the paper: job A (running, 2 nodes to t=8h), job B (running,
  // 2 nodes to t=4h), job C queued needing 4 nodes. A's dynamic grab of the
  // 2 idle nodes delays C by 4h. Scale: 1 node = 8 cores, 1 hour = 1 minute.
  Fixture f;
  AvailabilityProfile base(at(0), 48);
  base.subtract(at(0), at(8 * 60), 16);  // A
  base.subtract(at(0), at(4 * 60), 16);  // B
  const rms::Job* c = f.queued(3, 32, Duration::minutes(60));

  const std::vector<const rms::Job*> protected_jobs = {c};
  const PlanOptions opts{at(0), 5, true, false};
  const ReservationTable baseline = plan_jobs(protected_jobs, base, opts).table;
  ASSERT_NE(baseline.find(JobId{3}), nullptr);
  EXPECT_EQ(baseline.find(JobId{3})->start, at(4 * 60));

  // A (walltime end t=8h) grabs the 16 idle cores.
  const DynHold hold{16, at(0), at(8 * 60)};
  const DelayMeasurement m = measure_dynamic_request(
      hold, protected_jobs, protected_subset(protected_jobs, baseline, 5),
      baseline, base, /*physical_free_now=*/16, opts);
  ASSERT_TRUE(m.feasible);
  ASSERT_EQ(m.delays.size(), 1u);
  EXPECT_EQ(m.delays[0].job->id(), JobId{3});
  EXPECT_EQ(m.delays[0].delay, Duration::seconds(4 * 60));  // "4 hours"
}

TEST(MeasureDynamicRequest, StartNowJobPushedToLater) {
  Fixture f;
  AvailabilityProfile base(at(0), 16);
  base.subtract(at(0), at(600), 10);  // running job, 6 idle
  const rms::Job* q = f.queued(1, 6, Duration::minutes(5));
  const std::vector<const rms::Job*> jobs = {q};
  const PlanOptions opts{at(0), 5, true, false};
  const ReservationTable baseline = plan_jobs(jobs, base, opts).table;
  EXPECT_TRUE(baseline.find(JobId{1})->start_now);

  const DynHold hold{4, at(0), at(600)};
  const DelayMeasurement m =
      measure_dynamic_request(hold, jobs, protected_subset(jobs, baseline, 5),
                              baseline, base, 6, opts);
  ASSERT_TRUE(m.feasible);
  ASSERT_EQ(m.delays.size(), 1u);
  EXPECT_EQ(m.delays[0].delay, Duration::seconds(600));
}

TEST(MeasureDynamicRequest, UnaffectedJobHasZeroDelay) {
  Fixture f;
  AvailabilityProfile base(at(0), 128);
  const rms::Job* q = f.queued(1, 8, Duration::minutes(5));
  const std::vector<const rms::Job*> jobs = {q};
  const PlanOptions opts{at(0), 5, true, false};
  const ReservationTable baseline = plan_jobs(jobs, base, opts).table;

  const DynHold hold{4, at(0), at(600)};
  const DelayMeasurement m =
      measure_dynamic_request(hold, jobs, protected_subset(jobs, baseline, 5),
                              baseline, base, 128, opts);
  ASSERT_EQ(m.delays.size(), 1u);
  EXPECT_EQ(m.delays[0].delay, Duration::zero());
}

TEST(MeasureDynamicRequest, JobsBeyondDepthAreNotProtected) {
  Fixture f;
  AvailabilityProfile base(at(0), 16);
  base.subtract(at(0), at(600), 12);
  // Two queued full-machine jobs but delay depth of 1.
  const rms::Job* q1 = f.queued(1, 16, Duration::minutes(5));
  const rms::Job* q2 = f.queued(2, 16, Duration::minutes(5));
  const std::vector<const rms::Job*> jobs = {q1, q2};
  const PlanOptions opts{at(0), /*reservation_limit=*/1, true, false};
  const ReservationTable baseline = plan_jobs(jobs, base, opts).table;
  ASSERT_NE(baseline.find(JobId{1}), nullptr);
  ASSERT_EQ(baseline.find(JobId{2}), nullptr);  // beyond depth

  const DynHold hold{4, at(0), at(2000)};
  const DelayMeasurement m =
      measure_dynamic_request(hold, jobs, protected_subset(jobs, baseline, 1),
                              baseline, base, 4, opts);
  ASSERT_TRUE(m.feasible);
  // Only job 1's delay is measured; job 2 is invisible to fairness.
  ASSERT_EQ(m.delays.size(), 1u);
  EXPECT_EQ(m.delays[0].job->id(), JobId{1});
}

TEST(DiffPlans, NegativeDiffWhenJobSlipsEarlier) {
  // Pushing a big job back can pull a small one forward; diff_plans must
  // report the negative value rather than assert.
  Fixture f;
  const rms::Job* big = f.queued(1, 10, Duration::minutes(5));
  const rms::Job* small = f.queued(2, 8, Duration::minutes(1));
  const std::vector<const rms::Job*> jobs = {big, small};
  const PlanOptions opts{at(0), 5, true, false};

  AvailabilityProfile before(at(0), 10);
  const ReservationTable plan_before = plan_jobs(jobs, before, opts).table;
  AvailabilityProfile after(at(0), 10);
  after.subtract(at(0), at(100), 1);  // a 1-core hold
  const ReservationTable plan_after = replan_all(jobs, after, opts);

  const auto delays = diff_plans(jobs, plan_before, plan_after);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_GT(delays[0].delay, Duration::zero());   // big job delayed
  EXPECT_LT(delays[1].delay, Duration::zero());   // small job moved earlier
}

}  // namespace
}  // namespace dbs::core
