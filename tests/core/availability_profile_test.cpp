#include "core/availability_profile.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::core {
namespace {

Time at(std::int64_t s) { return Time::from_seconds(s); }

TEST(AvailabilityProfile, ConstantInitially) {
  const AvailabilityProfile p(at(0), 128);
  EXPECT_EQ(p.capacity(), 128);
  EXPECT_EQ(p.free_at(at(0)), 128);
  EXPECT_EQ(p.free_at(at(1'000'000)), 128);
  EXPECT_EQ(p.min_free(at(0), at(100)), 128);
}

TEST(AvailabilityProfile, SubtractCreatesStep) {
  AvailabilityProfile p(at(0), 100);
  p.subtract(at(10), at(20), 30);
  EXPECT_EQ(p.free_at(at(9)), 100);
  EXPECT_EQ(p.free_at(at(10)), 70);
  EXPECT_EQ(p.free_at(at(19)), 70);
  EXPECT_EQ(p.free_at(at(20)), 100);
}

TEST(AvailabilityProfile, OverlappingSubtractionsStack) {
  AvailabilityProfile p(at(0), 100);
  p.subtract(at(0), at(50), 40);
  p.subtract(at(25), at(75), 40);
  EXPECT_EQ(p.free_at(at(10)), 60);
  EXPECT_EQ(p.free_at(at(30)), 20);
  EXPECT_EQ(p.free_at(at(60)), 60);
  EXPECT_EQ(p.free_at(at(80)), 100);
  EXPECT_EQ(p.min_free(at(0), at(100)), 20);
}

TEST(AvailabilityProfile, SubtractClipsAtOrigin) {
  AvailabilityProfile p(at(100), 10);
  p.subtract(at(50), at(150), 4);  // clipped to [100, 150)
  EXPECT_EQ(p.free_at(at(100)), 6);
  EXPECT_EQ(p.free_at(at(150)), 10);
}

TEST(AvailabilityProfile, OversubscriptionCaught) {
  AvailabilityProfile p(at(0), 10);
  p.subtract(at(0), at(10), 10);
  EXPECT_THROW(p.subtract(at(5), at(6), 1), invariant_error);
}

TEST(AvailabilityProfile, AddRestores) {
  AvailabilityProfile p(at(0), 100);
  p.subtract(at(10), at(20), 30);
  p.add(at(10), at(20), 30);
  EXPECT_EQ(p.min_free(at(0), at(30)), 100);
  EXPECT_THROW(p.add(at(0), at(5), 1), invariant_error);  // above capacity
}

TEST(AvailabilityProfile, SubtractClampedFloorsAtZero) {
  AvailabilityProfile p(at(0), 10);
  p.subtract(at(0), at(10), 8);
  p.subtract_clamped(at(0), Time::far_future(), 5);
  EXPECT_EQ(p.free_at(at(5)), 0);
  EXPECT_EQ(p.free_at(at(20)), 5);
}

TEST(AvailabilityProfile, EarliestFitImmediate) {
  const AvailabilityProfile p(at(0), 100);
  EXPECT_EQ(p.earliest_fit(50, Duration::seconds(60), at(0)), at(0));
  EXPECT_EQ(p.earliest_fit(50, Duration::seconds(60), at(42)), at(42));
}

TEST(AvailabilityProfile, EarliestFitWaitsForRelease) {
  AvailabilityProfile p(at(0), 100);
  p.subtract(at(0), at(100), 80);  // a running job until t=100
  EXPECT_EQ(p.earliest_fit(30, Duration::seconds(10), at(0)), at(100));
  EXPECT_EQ(p.earliest_fit(20, Duration::seconds(10), at(0)), at(0));
}

TEST(AvailabilityProfile, EarliestFitNeedsContinuousWindow) {
  AvailabilityProfile p(at(0), 100);
  p.subtract(at(50), at(60), 80);  // a dip in the middle
  // A 30-core/60s request cannot straddle the dip.
  EXPECT_EQ(p.earliest_fit(30, Duration::seconds(60), at(0)), at(60));
  // A short request fits before the dip.
  EXPECT_EQ(p.earliest_fit(30, Duration::seconds(40), at(0)), at(0));
  // 20 cores fit through the dip.
  EXPECT_EQ(p.earliest_fit(20, Duration::seconds(60), at(0)), at(0));
}

TEST(AvailabilityProfile, EarliestFitSkipsMultipleHoles) {
  AvailabilityProfile p(at(0), 10);
  p.subtract(at(0), at(10), 8);
  p.subtract(at(15), at(30), 5);
  // 6 cores for 10s: blocked until t=10, then the second hold blocks
  // [15,30): first window of 10s at >=6 free starts at t=30... but [10,15)
  // is only 5s long, so the fit is at t=30.
  EXPECT_EQ(p.earliest_fit(6, Duration::seconds(10), at(0)), at(30));
  EXPECT_EQ(p.earliest_fit(6, Duration::seconds(5), at(0)), at(10));
}

TEST(AvailabilityProfile, EarliestFitImpossible) {
  const AvailabilityProfile p(at(0), 10);
  EXPECT_EQ(p.earliest_fit(11, Duration::seconds(1), at(0)),
            Time::far_future());
}

TEST(AvailabilityProfile, EarliestFitWithPermanentHold) {
  AvailabilityProfile p(at(0), 10);
  p.subtract(at(0), Time::far_future(), 4);  // dynamic partition
  EXPECT_EQ(p.earliest_fit(6, Duration::seconds(10), at(0)), at(0));
  EXPECT_EQ(p.earliest_fit(7, Duration::seconds(10), at(0)),
            Time::far_future());
}

TEST(AvailabilityProfile, CanFit) {
  AvailabilityProfile p(at(0), 10);
  p.subtract(at(5), at(10), 6);
  EXPECT_TRUE(p.can_fit(at(0), Duration::seconds(5), 10));
  EXPECT_FALSE(p.can_fit(at(0), Duration::seconds(6), 10));
  EXPECT_TRUE(p.can_fit(at(5), Duration::seconds(5), 4));
}

TEST(AvailabilityProfile, QueryBeforeOriginRejected) {
  const AvailabilityProfile p(at(100), 10);
  EXPECT_THROW((void)p.free_at(at(50)), precondition_error);
  EXPECT_THROW((void)p.min_free(at(50), at(150)), precondition_error);
  EXPECT_THROW((void)p.min_free(at(150), at(150)), precondition_error);
}

TEST(AvailabilityProfile, BreakpointsExposeSteps) {
  AvailabilityProfile p(at(0), 10);
  p.subtract(at(5), at(7), 3);
  const auto bp = p.breakpoints();
  ASSERT_EQ(bp.size(), 3u);
  EXPECT_EQ(bp[0], std::make_pair(at(0), CoreCount{10}));
  EXPECT_EQ(bp[1], std::make_pair(at(5), CoreCount{7}));
  EXPECT_EQ(bp[2], std::make_pair(at(7), CoreCount{10}));
}

}  // namespace
}  // namespace dbs::core
