// Scheduler iteration mechanics through the full system façade.
#include "core/maui_scheduler.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "batch/batch_system.hpp"

namespace dbs::core {
namespace {

using batch::BatchSystem;
using batch::SystemConfig;

SystemConfig config(std::size_t nodes = 4, std::size_t depth = 2) {
  SystemConfig c;
  c.cluster.node_count = nodes;
  c.cluster.cores_per_node = 8;
  c.scheduler.reservation_depth = depth;
  c.scheduler.reservation_delay_depth = depth;
  return c;
}

TEST(MauiScheduler, StartsJobOnSubmission) {
  BatchSystem sys(config());
  const JobId id = sys.submit_now(test::spec("a", 8, Duration::minutes(10)),
                                  test::rigid(Duration::minutes(1)));
  sys.run();
  const auto& rec = sys.recorder().record(id);
  ASSERT_TRUE(rec.completed());
  // Started at the first triggered iteration (~scheduler_delay after submit).
  EXPECT_LT(rec.wait_time(), Duration::seconds(1));
  EXPECT_GE(sys.scheduler().iterations(), 1u);
}

TEST(MauiScheduler, PriorityOrderIsQueueTime) {
  BatchSystem sys(config(1));
  // Fill the machine, then queue two jobs; the earlier submission runs first.
  sys.submit_now(test::spec("fill", 8, Duration::minutes(5)),
                 test::rigid(Duration::minutes(5)));
  sys.submit_at(Time::from_seconds(10), test::spec("first", 8, Duration::minutes(5)),
                [] { return test::rigid(Duration::minutes(1)); });
  sys.submit_at(Time::from_seconds(20), test::spec("second", 8, Duration::minutes(5)),
                [] { return test::rigid(Duration::minutes(1)); });
  sys.run();
  const auto records = sys.recorder().records();
  EXPECT_LT(*records[1].start, *records[2].start);
}

TEST(MauiScheduler, BackfillRunsSmallJobOutOfOrder) {
  BatchSystem sys(config(2));
  // 16 cores total. Running job takes 12 for 10 min.
  sys.submit_now(test::spec("big-run", 12, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  // Queued: 16-core job (waits), then a 4-core 5-min job (backfills).
  sys.submit_at(Time::from_seconds(5), test::spec("waits", 16, Duration::minutes(5)),
                [] { return test::rigid(Duration::minutes(5)); });
  sys.submit_at(Time::from_seconds(10), test::spec("small", 4, Duration::minutes(5)),
                [] { return test::rigid(Duration::minutes(5)); });
  sys.run();
  const auto records = sys.recorder().records();
  EXPECT_TRUE(records[2].backfilled);
  EXPECT_LT(*records[2].start, *records[1].start);
  // The backfilled job must not delay the waiting job beyond the running
  // job's walltime end.
  EXPECT_LE(*records[1].start,
            Time::from_seconds(1) + Duration::minutes(10));
}

TEST(MauiScheduler, BackfillDisabledKeepsOrder) {
  SystemConfig c = config(2);
  c.scheduler.enable_backfill = false;
  BatchSystem sys(c);
  sys.submit_now(test::spec("big-run", 12, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  sys.submit_at(Time::from_seconds(5), test::spec("waits", 16, Duration::minutes(5)),
                [] { return test::rigid(Duration::minutes(5)); });
  sys.submit_at(Time::from_seconds(10), test::spec("small", 4, Duration::minutes(5)),
                [] { return test::rigid(Duration::minutes(5)); });
  sys.run();
  const auto records = sys.recorder().records();
  EXPECT_FALSE(records[2].backfilled);
  EXPECT_GE(*records[2].start, *records[1].start);
}

TEST(MauiScheduler, DynRequestGrantedFromIdle) {
  BatchSystem sys(config());
  wl::Behavior evolving;
  evolving.static_runtime = Duration::minutes(10);
  evolving.evolving = true;
  evolving.ask_cores = 4;
  const JobId id = sys.submit_now(test::spec("evo", 8, Duration::minutes(10)),
                                  apps::make_application(evolving));
  sys.run();
  const auto& rec = sys.recorder().record(id);
  EXPECT_EQ(rec.dyn_requests, 1);
  EXPECT_EQ(rec.dyn_grants, 1);
  EXPECT_EQ(rec.cores_peak, 12);
  // PaperDet model: runtime becomes SET * 8/12.
  const Duration runtime = *rec.end - *rec.start;
  EXPECT_LT(runtime, Duration::seconds(405));
  EXPECT_GT(runtime, Duration::seconds(395));
}

TEST(MauiScheduler, DynRequestRejectedWhenMachineFull) {
  BatchSystem sys(config(1));  // 8 cores
  wl::Behavior evolving;
  evolving.static_runtime = Duration::minutes(10);
  evolving.evolving = true;
  evolving.ask_cores = 4;
  const JobId id = sys.submit_now(test::spec("evo", 8, Duration::minutes(10)),
                                  apps::make_application(evolving));
  sys.run();
  const auto& rec = sys.recorder().record(id);
  EXPECT_EQ(rec.dyn_grants, 0);
  EXPECT_EQ(rec.dyn_rejects, 2);  // first ask + the 25% retry
  const Duration runtime = *rec.end - *rec.start;
  EXPECT_GE(runtime, Duration::minutes(10));
}

TEST(MauiScheduler, RetryAtQuarterSucceedsWhenSpaceFrees) {
  // 16 cores: the evolving job (8) + a rigid job (8) that ends between the
  // 16% and 25% marks; the first ask fails, the retry succeeds.
  BatchSystem sys(config(2));
  wl::Behavior evolving;
  evolving.static_runtime = Duration::minutes(100);
  evolving.evolving = true;
  evolving.ask_cores = 4;
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(100)),
                                   apps::make_application(evolving));
  sys.submit_now(test::spec("rigid", 8, Duration::minutes(20)),
                 test::rigid(Duration::minutes(20)));
  sys.run();
  const auto& rec = sys.recorder().record(evo);
  EXPECT_EQ(rec.dyn_requests, 2);
  EXPECT_EQ(rec.dyn_rejects, 1);
  EXPECT_EQ(rec.dyn_grants, 1);
}

TEST(MauiScheduler, ZJobDrainsTheQueue) {
  BatchSystem sys(config(2));
  // A running job occupies half the machine for 10 minutes.
  sys.submit_now(test::spec("run", 8, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  // Z job needs the whole machine.
  rms::JobSpec z = test::spec("Z", 16, Duration::minutes(2), "zuser");
  z.exclusive_priority = true;
  sys.submit_at(Time::from_seconds(30), z,
                [] { return test::rigid(Duration::minutes(2)); });
  // A small job that WOULD backfill, submitted while Z waits.
  sys.submit_at(Time::from_seconds(60), test::spec("small", 4, Duration::minutes(1)),
                [] { return test::rigid(Duration::minutes(1)); });
  sys.run();
  const auto records = sys.recorder().records();
  const auto& z_rec = records[1];
  const auto& small_rec = records[2];
  // Z starts right after the running job ends; small runs only after Z
  // started (drain), despite idle cores being available earlier.
  EXPECT_GE(*small_rec.start, *z_rec.start);
}

TEST(MauiScheduler, DynamicPartitionServesOnlyDynRequests) {
  SystemConfig c = config(2);
  c.scheduler.dynamic_partition_cores = 4;
  BatchSystem sys(c);
  // 16 cores, 4 reserved for dynamic requests: static jobs see 12.
  wl::Behavior evolving;
  evolving.static_runtime = Duration::minutes(10);
  evolving.evolving = true;
  evolving.ask_cores = 4;
  const JobId evo = sys.submit_now(test::spec("evo", 8, Duration::minutes(10)),
                                   apps::make_application(evolving));
  // An 8-core rigid job: 8 cores are physically idle, but 4 of them belong
  // to the partition, so it must wait for the evolving job to finish.
  const JobId rigid =
      sys.submit_now(test::spec("rigid", 8, Duration::minutes(5), "bob"),
                     test::rigid(Duration::minutes(5)));
  sys.run();
  // The evolving job's request was served from the partition.
  EXPECT_EQ(sys.recorder().record(evo).dyn_grants, 1);
  EXPECT_GE(*sys.recorder().record(rigid).start,
            *sys.recorder().record(evo).end);
}

TEST(MauiScheduler, PollTimerIdlesOutWhenQueueEmpty) {
  BatchSystem sys(config());
  sys.submit_now(test::spec("a", 8, Duration::minutes(5)),
                 test::rigid(Duration::minutes(1)));
  sys.run();  // must terminate: no perpetual poll events
  EXPECT_TRUE(sys.simulator().idle());
}

TEST(MauiScheduler, StatsCountStartsAndReservations) {
  BatchSystem sys(config(1, 2));
  sys.submit_now(test::spec("a", 8, Duration::minutes(5)),
                 test::rigid(Duration::minutes(5)));
  sys.submit_now(test::spec("b", 8, Duration::minutes(5)),
                 test::rigid(Duration::minutes(5)));
  sys.run_until(Time::from_seconds(5));
  const IterationStats& stats = sys.scheduler().last_stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_EQ(stats.reservations, 1u);
}

}  // namespace
}  // namespace dbs::core
