#include "core/priority.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "core/fairshare.hpp"

namespace dbs::core {
namespace {

std::unique_ptr<rms::Job> job(std::uint64_t id, CoreCount cores,
                              Duration walltime, Time submit,
                              std::string user = "alice",
                              bool exclusive = false) {
  rms::JobSpec s = test::spec("j" + std::to_string(id), cores, walltime,
                              std::move(user));
  s.exclusive_priority = exclusive;
  return std::make_unique<rms::Job>(JobId{id}, s,
                                    test::rigid(Duration::minutes(1)), submit);
}

TEST(PriorityEngine, QueueTimeGrowsPriority) {
  const PriorityEngine engine({}, {}, nullptr);
  auto j = job(1, 4, Duration::minutes(10), Time::epoch());
  const double early = engine.priority(*j, Time::from_seconds(60));
  const double late = engine.priority(*j, Time::from_seconds(600));
  EXPECT_GT(late, early);
  EXPECT_DOUBLE_EQ(early, 1.0);  // one minute queued, weight 1/min
}

TEST(PriorityEngine, XFactorFavoursShortJobs) {
  PriorityWeights w;
  w.queue_time_per_minute = 0.0;
  w.xfactor = 1.0;
  const PriorityEngine engine(w, {}, nullptr);
  auto short_j = job(1, 4, Duration::minutes(10), Time::epoch());
  auto long_j = job(2, 4, Duration::hours(10), Time::epoch());
  const Time now = Time::from_seconds(3600);
  EXPECT_GT(engine.priority(*short_j, now), engine.priority(*long_j, now));
}

TEST(PriorityEngine, ResourceWeightFavoursBigJobs) {
  PriorityWeights w;
  w.queue_time_per_minute = 0.0;
  w.per_core = 1.0;
  const PriorityEngine engine(w, {}, nullptr);
  auto small = job(1, 4, Duration::minutes(10), Time::epoch());
  auto big = job(2, 64, Duration::minutes(10), Time::epoch());
  EXPECT_GT(engine.priority(*big, Time::epoch()),
            engine.priority(*small, Time::epoch()));
}

TEST(PriorityEngine, CredPriorities) {
  PriorityWeights w;
  w.queue_time_per_minute = 0.0;
  w.cred = 1.0;
  CredPriorities cred;
  cred.user["vip"] = 1000.0;
  cred.group["grp"] = 10.0;
  const PriorityEngine engine(w, cred, nullptr);
  auto vip = job(1, 4, Duration::minutes(10), Time::epoch(), "vip");
  auto pleb = job(2, 4, Duration::minutes(10), Time::epoch(), "pleb");
  EXPECT_DOUBLE_EQ(engine.priority(*vip, Time::epoch()), 1010.0);
  EXPECT_DOUBLE_EQ(engine.priority(*pleb, Time::epoch()), 10.0);
}

TEST(PriorityEngine, PrioritizeSortsDescending) {
  const PriorityEngine engine({}, {}, nullptr);
  auto a = job(1, 4, Duration::minutes(10), Time::from_seconds(100));
  auto b = job(2, 4, Duration::minutes(10), Time::from_seconds(0));
  auto c = job(3, 4, Duration::minutes(10), Time::from_seconds(50));
  const auto sorted = engine.prioritize(
      std::vector<const rms::Job*>{a.get(), b.get(), c.get()},
      Time::from_seconds(200));
  EXPECT_EQ(sorted[0]->id(), JobId{2});  // longest queued
  EXPECT_EQ(sorted[1]->id(), JobId{3});
  EXPECT_EQ(sorted[2]->id(), JobId{1});
}

TEST(PriorityEngine, ExclusiveAlwaysFirst) {
  const PriorityEngine engine({}, {}, nullptr);
  auto old_job = job(1, 4, Duration::minutes(10), Time::epoch());
  auto z = job(2, 128, Duration::minutes(10), Time::from_seconds(9000), "zuser",
               /*exclusive=*/true);
  const auto sorted = engine.prioritize(
      std::vector<const rms::Job*>{old_job.get(), z.get()},
      Time::from_seconds(10000));
  EXPECT_EQ(sorted[0]->id(), JobId{2});
}

TEST(PriorityEngine, TiesBreakBySubmissionThenId) {
  PriorityWeights w;
  w.queue_time_per_minute = 0.0;  // all priorities equal
  const PriorityEngine engine(w, {}, nullptr);
  auto a = job(5, 4, Duration::minutes(10), Time::from_seconds(10));
  auto b = job(3, 4, Duration::minutes(10), Time::from_seconds(10));
  auto c = job(4, 4, Duration::minutes(10), Time::from_seconds(5));
  const auto sorted = engine.prioritize(
      std::vector<const rms::Job*>{a.get(), b.get(), c.get()},
      Time::from_seconds(100));
  EXPECT_EQ(sorted[0]->id(), JobId{4});  // earliest submit
  EXPECT_EQ(sorted[1]->id(), JobId{3});  // then lower id
  EXPECT_EQ(sorted[2]->id(), JobId{5});
}

TEST(PriorityEngine, FairshareComponentApplied) {
  FairshareConfig fs_cfg;
  fs_cfg.enabled = true;
  fs_cfg.user_targets["alice"] = 50.0;
  fs_cfg.user_targets["bob"] = 50.0;
  Fairshare fs(fs_cfg);
  // alice consumed everything so far.
  fs.record_usage({"alice", "", "", "", ""}, 1000.0, Time::from_seconds(1));

  PriorityWeights w;
  w.queue_time_per_minute = 0.0;
  w.fairshare = 1.0;
  const PriorityEngine engine(w, {}, &fs);
  auto alice = job(1, 4, Duration::minutes(10), Time::epoch(), "alice");
  auto bob = job(2, 4, Duration::minutes(10), Time::epoch(), "bob");
  EXPECT_LT(engine.priority(*alice, Time::from_seconds(10)),
            engine.priority(*bob, Time::from_seconds(10)));
}

}  // namespace
}  // namespace dbs::core
