#include "core/dfs_policy.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::core {
namespace {

TEST(DfsPolicy, ParseRoundTrip) {
  for (const DfsPolicy p :
       {DfsPolicy::None, DfsPolicy::SingleJobDelay, DfsPolicy::TargetDelay,
        DfsPolicy::SingleAndTargetDelay}) {
    const auto parsed = parse_dfs_policy(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_dfs_policy("bogus").has_value());
  // The paper uses both spellings for the combined policy.
  EXPECT_EQ(parse_dfs_policy("DFSSINGLETARGETDELAY"),
            DfsPolicy::SingleAndTargetDelay);
  EXPECT_EQ(parse_dfs_policy("none"), DfsPolicy::None);
}

TEST(DfsPolicy, FlagHelpers) {
  EXPECT_FALSE(has_single(DfsPolicy::None));
  EXPECT_TRUE(has_single(DfsPolicy::SingleJobDelay));
  EXPECT_FALSE(has_target(DfsPolicy::SingleJobDelay));
  EXPECT_TRUE(has_target(DfsPolicy::TargetDelay));
  EXPECT_TRUE(has_single(DfsPolicy::SingleAndTargetDelay));
  EXPECT_TRUE(has_target(DfsPolicy::SingleAndTargetDelay));
}

TEST(DfsConfig, LimitsFallBackToDefaults) {
  DfsConfig cfg;
  cfg.defaults.target_delay = Duration::seconds(500);
  cfg.user["alice"] = {true, Duration::zero(), Duration::seconds(100)};
  EXPECT_EQ(cfg.limits_of(DfsEntityKind::User, "alice").target_delay,
            Duration::seconds(100));
  EXPECT_EQ(cfg.limits_of(DfsEntityKind::User, "bob").target_delay,
            Duration::seconds(500));
  EXPECT_EQ(cfg.limits_of(DfsEntityKind::Group, "anything").target_delay,
            Duration::seconds(500));
}

TEST(DfsConfig, MapOfSelectsDimension) {
  DfsConfig cfg;
  cfg.map_of(DfsEntityKind::Group)["g"] = {false, {}, {}};
  EXPECT_FALSE(cfg.group.at("g").delay_perm);
  EXPECT_TRUE(cfg.user.empty());
}

TEST(DfsConfig, Validation) {
  DfsConfig cfg;
  cfg.interval = Duration::zero();
  EXPECT_THROW(cfg.validate(), precondition_error);
  cfg = DfsConfig{};
  cfg.decay = -0.1;
  EXPECT_THROW(cfg.validate(), precondition_error);
  cfg = DfsConfig{};
  cfg.user[""] = {};
  EXPECT_THROW(cfg.validate(), precondition_error);
  cfg = DfsConfig{};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(DfsConfig, EntityNameSelectsCredField) {
  const Credentials cred{"u", "g", "a", "c", "q"};
  EXPECT_EQ(entity_name(cred, DfsEntityKind::User), "u");
  EXPECT_EQ(entity_name(cred, DfsEntityKind::Group), "g");
  EXPECT_EQ(entity_name(cred, DfsEntityKind::Account), "a");
  EXPECT_EQ(entity_name(cred, DfsEntityKind::JobClass), "c");
  EXPECT_EQ(entity_name(cred, DfsEntityKind::Qos), "q");
}

}  // namespace
}  // namespace dbs::core
