// Per-stage unit tests: each pipeline stage is run against a hand-built
// PipelineEnv + IterationContext over a bare server (no scheduler), plus
// dry-run semantics through the full system façade.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "batch/batch_system.hpp"
#include "core/maui_scheduler.hpp"
#include "rms/decision.hpp"

namespace dbs::core {
namespace {

using batch::BatchSystem;
using batch::SystemConfig;

/// A bare server + cluster plus the long-lived engines stages need; tests
/// drive one stage at a time and inspect the context it leaves behind.
struct StageFixture {
  StageFixture() {
    cfg.reservation_depth = 2;
    cfg.reservation_delay_depth = 2;
  }

  void begin(Time now) { ctx.begin_iteration(now, 1, /*dry_run=*/false); }

  JobId submit(const std::string& name, CoreCount cores,
               const std::string& user = "alice") {
    return sys.server.submit(test::spec(name, cores, Duration::minutes(10), user),
                             test::rigid(Duration::minutes(10)));
  }

  test::BareSystem sys;  // 4 nodes x 8 cores
  SchedulerConfig cfg;
  Fairshare fairshare{cfg.fairshare};
  PriorityEngine priority{cfg.weights, cfg.cred_priorities, &fairshare};
  DfsEngine dfs{cfg.dfs};
  IterationContext ctx{sys.server};
  PipelineEnv env{sys.server, cfg, fairshare, priority, dfs};
};

TEST(PipelineStages, StageNamesMatchAlgorithmOrder) {
  const auto& names = stage_names();
  ASSERT_EQ(names.size(), kStageCount);
  EXPECT_EQ(names[0], "gather");
  EXPECT_EQ(names[1], "statistics");
  EXPECT_EQ(names[2], "prioritize");
  EXPECT_EQ(names[3], "classify");
  EXPECT_EQ(names[4], "admission");
  EXPECT_EQ(names[5], "start_backfill");
}

TEST(PipelineStages, GatherSnapshotsClusterAndRequestState) {
  StageFixture f;
  const JobId running = f.submit("run", 8);
  ASSERT_TRUE(f.sys.server.start_job(running, false));
  f.submit("queued", 4);
  f.begin(Time::epoch());

  GatherStage gather;
  gather.run(f.env, f.ctx);

  EXPECT_EQ(f.ctx.physical_free, 24);
  EXPECT_EQ(f.ctx.physical.capacity(), 32);
  EXPECT_TRUE(f.ctx.requests.empty());
  EXPECT_EQ(f.ctx.stats.eligible_dynamic, 0u);
  // The planning profile mirrors the physical one when no dynamic
  // partition is configured.
  EXPECT_EQ(f.ctx.planning.capacity(), f.ctx.physical.capacity());
}

TEST(PipelineStages, StatisticsChargesRunningUsageIntoFairshare) {
  StageFixture f;
  f.cfg.fairshare.enabled = true;
  f.cfg.fairshare.user_targets["alice"] = 50.0;
  f.fairshare = Fairshare(f.cfg.fairshare);
  const JobId running = f.submit("run", 8);
  ASSERT_TRUE(f.sys.server.start_job(running, false));

  StatisticsStage statistics(Time::epoch());
  f.begin(Time::from_seconds(100));
  statistics.run(f.env, f.ctx);
  // 8 cores for 100 s.
  EXPECT_DOUBLE_EQ(f.fairshare.effective_usage("alice"), 800.0);

  // The second pass charges only the delta since the first.
  f.begin(Time::from_seconds(150));
  statistics.run(f.env, f.ctx);
  EXPECT_DOUBLE_EQ(f.fairshare.effective_usage("alice"), 1200.0);
}

TEST(PipelineStages, PrioritizeOrdersQueueAndAppliesPerUserCap) {
  StageFixture f;
  f.submit("a1", 4, "alice");
  f.submit("a2", 4, "alice");
  f.submit("b1", 4, "bob");

  f.begin(Time::epoch());
  PrioritizeStage prioritize;
  prioritize.run(f.env, f.ctx);
  EXPECT_EQ(f.ctx.prioritized.size(), 3u);
  EXPECT_EQ(f.ctx.stats.eligible_static, 3u);
  EXPECT_FALSE(f.ctx.drain);

  f.cfg.max_eligible_per_user = 1;
  f.begin(Time::epoch());
  prioritize.run(f.env, f.ctx);
  ASSERT_EQ(f.ctx.prioritized.size(), 2u);  // first of alice, first of bob
  EXPECT_EQ(f.ctx.prioritized[0]->spec().name, "a1");
  EXPECT_EQ(f.ctx.prioritized[1]->spec().name, "b1");
}

TEST(PipelineStages, PrioritizeDetectsExclusivePriorityDrain) {
  StageFixture f;
  rms::JobSpec z = test::spec("z", 32, Duration::minutes(10));
  z.exclusive_priority = true;
  f.sys.server.submit(std::move(z), test::rigid(Duration::minutes(10)));
  f.begin(Time::epoch());
  PrioritizeStage prioritize;
  prioritize.run(f.env, f.ctx);
  EXPECT_TRUE(f.ctx.drain);
}

TEST(PipelineStages, ClassifySplitsStartNowFromStartLater) {
  StageFixture f;
  f.submit("fits", 32);     // fills the empty machine: StartNow
  f.submit("waits", 8);     // must wait for "fits": StartLater
  f.begin(Time::epoch());

  GatherStage gather;
  PrioritizeStage prioritize;
  ClassifyStage classify;
  gather.run(f.env, f.ctx);
  prioritize.run(f.env, f.ctx);
  classify.run(f.env, f.ctx);

  EXPECT_EQ(f.ctx.baseline_plan.table.start_now_count(), 1u);
  EXPECT_EQ(f.ctx.baseline_plan.table.start_later_count(), 1u);
  // The protected set is the StartNow job plus the delayed job (depth 2).
  EXPECT_EQ(f.ctx.protected_jobs.size(), 2u);
  EXPECT_EQ(f.ctx.measure_opts.now, Time::epoch());
  EXPECT_EQ(f.ctx.measure_opts.reservation_limit, f.cfg.delay_plan_depth());
}

SystemConfig small_config() {
  SystemConfig c;
  c.cluster.node_count = 2;
  c.cluster.cores_per_node = 8;
  c.scheduler.reservation_depth = 2;
  c.scheduler.reservation_delay_depth = 2;
  return c;
}

TEST(DryRunIteration, RecordsDecisionsWithoutApplyingThem) {
  BatchSystem sys(small_config());
  // Fill the machine, then queue a job that must wait.
  sys.submit_now(test::spec("fill", 16, Duration::minutes(10)),
                 test::rigid(Duration::minutes(10)));
  sys.submit_at(Time::from_seconds(5), test::spec("waits", 16, Duration::minutes(5)),
                [] { return test::rigid(Duration::minutes(5)); });
  sys.run_until(Time::from_seconds(30));

  ASSERT_EQ(sys.server().jobs().queued().size(), 1u);
  const std::uint64_t iterations_before = sys.scheduler().iterations();

  const std::vector<rms::Decision> decisions =
      sys.scheduler().dry_run_iteration();

  // The waiting job shows up as a reservation in the stream.
  ASSERT_FALSE(decisions.empty());
  bool reserved_waiting = false;
  for (const rms::Decision& d : decisions)
    if (d.kind == rms::DecisionKind::Reserve && d.cores == 16)
      reserved_waiting = true;
  EXPECT_TRUE(reserved_waiting);

  // Nothing was applied: same queue, same iteration count, and the run
  // completes exactly as if the dry-run had never happened.
  EXPECT_EQ(sys.server().jobs().queued().size(), 1u);
  EXPECT_EQ(sys.scheduler().iterations(), iterations_before);
  sys.run();
  for (const auto& rec : sys.recorder().records())
    EXPECT_TRUE(rec.completed());
}

TEST(DryRunIteration, EmptySystemEmitsNoDecisions)
{
  BatchSystem sys(small_config());
  EXPECT_TRUE(sys.scheduler().dry_run_iteration().empty());
}

TEST(PipelineMetrics, StageTimingsCoverEveryStage) {
  SystemConfig c = small_config();
  c.scheduler.stage_timing = true;
  BatchSystem sys(c);
  obs::Registry registry;
  sys.set_sinks({nullptr, &registry});
  sys.submit_now(test::spec("a", 8, Duration::minutes(1)),
                 test::rigid(Duration::minutes(1)));
  sys.run();

  ASSERT_GE(sys.scheduler().iterations(), 1u);
  const IterationStats& last = sys.scheduler().last_stats();
  double stage_sum = 0.0;
  for (double us : last.stage_wall_us) {
    EXPECT_GE(us, 0.0);
    stage_sum += us;
  }
  // Stage spans are measured inside the iteration span.
  EXPECT_LE(stage_sum, last.wall_us + 1e-6);

  for (std::string_view stage : stage_names()) {
    const obs::Histogram* h = registry.find_histogram(
        std::string("scheduler.stage_iteration_us.") + std::string(stage));
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->count(), sys.scheduler().iterations()) << stage;
  }
}

TEST(PipelineHistory, HistoryIsCappedAtKHistoryCap) {
  // The cap itself (4096 iterations) is too slow to exercise end-to-end
  // here; assert the contract on the structure instead: history holds one
  // entry per iteration and is bounded by kHistoryCap.
  BatchSystem sys(small_config());
  sys.submit_now(test::spec("a", 8, Duration::minutes(1)),
                 test::rigid(Duration::minutes(1)));
  sys.run();
  EXPECT_EQ(sys.scheduler().history().size(),
            std::min<std::size_t>(sys.scheduler().iterations(),
                                  MauiScheduler::kHistoryCap));
  EXPECT_EQ(sys.scheduler().history().back().at,
            sys.scheduler().last_stats().at);
}

}  // namespace
}  // namespace dbs::core
