#include "core/reservation_table.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::core {
namespace {

Reservation res(std::uint64_t job, std::int64_t start, std::int64_t end,
                CoreCount cores, bool now = false) {
  return {JobId{job}, Time::from_seconds(start), Time::from_seconds(end),
          cores, now, false};
}

TEST(ReservationTable, AddAndFind) {
  ReservationTable t;
  t.add(res(1, 0, 100, 8, true));
  t.add(res(2, 100, 200, 16));
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(JobId{2}), nullptr);
  EXPECT_EQ(t.find(JobId{2})->cores, 16);
  EXPECT_EQ(t.find(JobId{3}), nullptr);
}

TEST(ReservationTable, Counts) {
  ReservationTable t;
  t.add(res(1, 0, 100, 8, true));
  t.add(res(2, 0, 50, 4, true));
  t.add(res(3, 100, 200, 16));
  EXPECT_EQ(t.start_now_count(), 2u);
  EXPECT_EQ(t.start_later_count(), 1u);
}

TEST(ReservationTable, Validation) {
  ReservationTable t;
  EXPECT_THROW(t.add(res(1, 100, 100, 8)), precondition_error);  // empty
  EXPECT_THROW(t.add(res(1, 0, 100, 0)), precondition_error);    // no cores
  t.add(res(1, 0, 100, 8));
  EXPECT_THROW(t.add(res(1, 200, 300, 8)), precondition_error);  // duplicate
}

TEST(ReservationTable, ClearEmpties) {
  ReservationTable t;
  t.add(res(1, 0, 100, 8));
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(JobId{1}), nullptr);
}

}  // namespace
}  // namespace dbs::core
