#include "core/preemption.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "common/assert.hpp"

namespace dbs::core {
namespace {

struct Fixture {
  std::vector<std::unique_ptr<rms::Job>> storage;

  const rms::Job* running(std::uint64_t id, CoreCount cores, bool preemptible,
                          bool backfilled, Time started) {
    rms::JobSpec s = test::spec("j" + std::to_string(id), cores,
                                Duration::minutes(30));
    s.preemptible = preemptible;
    storage.push_back(std::make_unique<rms::Job>(
        JobId{id}, s, test::rigid(Duration::minutes(10)), Time::epoch()));
    storage.back()->mark_started(
        started, cluster::Placement{{{NodeId{0}, cores}}}, backfilled);
    return storage.back().get();
  }

  std::vector<const rms::Job*> all() const {
    std::vector<const rms::Job*> out;
    for (const auto& j : storage) out.push_back(j.get());
    return out;
  }
};

TEST(Preemption, NoVictimsNeededWhenFreeSuffices) {
  Fixture f;
  f.running(1, 8, true, true, Time::epoch());
  EXPECT_TRUE(select_preemption_victims(f.all(), 4, 8).empty());
}

TEST(Preemption, OnlyBackfilledPreemptibleJobsAreCandidates) {
  Fixture f;
  f.running(1, 8, /*preemptible=*/false, /*backfilled=*/true, Time::epoch());
  f.running(2, 8, /*preemptible=*/true, /*backfilled=*/false, Time::epoch());
  EXPECT_TRUE(select_preemption_victims(f.all(), 4, 0).empty());
}

TEST(Preemption, MostRecentlyStartedFirst) {
  Fixture f;
  f.running(1, 8, true, true, Time::from_seconds(10));
  f.running(2, 8, true, true, Time::from_seconds(100));
  const auto victims = select_preemption_victims(f.all(), 4, 0);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], JobId{2});
}

TEST(Preemption, AccumulatesUntilEnough) {
  Fixture f;
  f.running(1, 4, true, true, Time::from_seconds(10));
  f.running(2, 4, true, true, Time::from_seconds(20));
  f.running(3, 4, true, true, Time::from_seconds(30));
  const auto victims = select_preemption_victims(f.all(), 10, 2);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], JobId{3});
  EXPECT_EQ(victims[1], JobId{2});
}

TEST(Preemption, EmptyWhenImpossible) {
  Fixture f;
  f.running(1, 4, true, true, Time::epoch());
  EXPECT_TRUE(select_preemption_victims(f.all(), 100, 0).empty());
}

TEST(Preemption, RequesterIsNeverItsOwnVictim) {
  // Regression: a backfilled preemptible evolving job must not be selected
  // to satisfy its own dynamic request.
  Fixture f;
  const rms::Job* self = f.running(1, 8, true, true, Time::from_seconds(10));
  EXPECT_TRUE(
      select_preemption_victims(f.all(), 4, 0, self->id()).empty());
  f.running(2, 8, true, true, Time::from_seconds(5));
  const auto victims = select_preemption_victims(f.all(), 4, 0, self->id());
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], JobId{2});
}

TEST(Preemption, ZeroTargetRejected) {
  Fixture f;
  EXPECT_THROW((void)select_preemption_victims(f.all(), 0, 0),
               precondition_error);
}

}  // namespace
}  // namespace dbs::core
