#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::core {
namespace {

Time at(std::int64_t s) { return Time::from_seconds(s); }

TEST(Partition, RemovesCoresForever) {
  AvailabilityProfile p(at(0), 32);
  reserve_dynamic_partition(p, 8);
  EXPECT_EQ(p.free_at(at(0)), 24);
  EXPECT_EQ(p.free_at(at(1'000'000)), 24);
}

TEST(Partition, ZeroIsNoOp) {
  AvailabilityProfile p(at(0), 32);
  reserve_dynamic_partition(p, 0);
  EXPECT_EQ(p.free_at(at(0)), 32);
  EXPECT_EQ(p.breakpoints().size(), 1u);
}

TEST(Partition, ClampsWhenRunningJobsOverlap) {
  AvailabilityProfile p(at(0), 32);
  p.subtract(at(0), at(100), 30);  // running jobs already use 30
  reserve_dynamic_partition(p, 8);
  EXPECT_EQ(p.free_at(at(50)), 0);   // clamped, not negative
  EXPECT_EQ(p.free_at(at(200)), 24);
}

TEST(Partition, LargerThanFreeCoresClampsUntilJobsDrain) {
  AvailabilityProfile p(at(0), 32);
  p.subtract(at(0), at(200), 12);  // long-running batch
  p.subtract(at(0), at(100), 16);  // early extra load: 28 of 32 used
  reserve_dynamic_partition(p, 16);  // partition exceeds the 4 free cores
  EXPECT_EQ(p.free_at(at(50)), 0);    // clamped at zero, not -12
  EXPECT_EQ(p.free_at(at(150)), 4);   // 32 - 12 - 16
  EXPECT_EQ(p.free_at(at(250)), 16);  // only the partition remains
}

TEST(Partition, RunningDynamicAllocationsInsidePartitionDrainCleanly) {
  // Dynamic allocations already hold 30 of 32 cores — more than the
  // machine minus the partition. The clamped reservation must not push
  // any segment negative, and the partition takes full effect per
  // segment the moment the allocations drain.
  AvailabilityProfile p(at(0), 32);
  p.subtract(at(0), at(60), 30);
  p.subtract(at(60), at(120), 10);
  reserve_dynamic_partition(p, 8);
  EXPECT_EQ(p.free_at(at(30)), 0);
  EXPECT_EQ(p.free_at(at(90)), 14);  // 32 - 10 - 8
  EXPECT_EQ(p.free_at(at(130)), 24);
}

TEST(Partition, AlmostWholeMachineAllowed) {
  AvailabilityProfile p(at(0), 32);
  reserve_dynamic_partition(p, 31);
  EXPECT_EQ(p.free_at(at(0)), 1);
  EXPECT_EQ(p.free_at(at(1'000'000)), 1);
}

TEST(Partition, WholeMachineRejected) {
  AvailabilityProfile p(at(0), 32);
  EXPECT_THROW(reserve_dynamic_partition(p, 32), precondition_error);
  EXPECT_THROW(reserve_dynamic_partition(p, -1), precondition_error);
}

}  // namespace
}  // namespace dbs::core
