#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::core {
namespace {

Time at(std::int64_t s) { return Time::from_seconds(s); }

TEST(Partition, RemovesCoresForever) {
  AvailabilityProfile p(at(0), 32);
  reserve_dynamic_partition(p, 8);
  EXPECT_EQ(p.free_at(at(0)), 24);
  EXPECT_EQ(p.free_at(at(1'000'000)), 24);
}

TEST(Partition, ZeroIsNoOp) {
  AvailabilityProfile p(at(0), 32);
  reserve_dynamic_partition(p, 0);
  EXPECT_EQ(p.free_at(at(0)), 32);
  EXPECT_EQ(p.breakpoints().size(), 1u);
}

TEST(Partition, ClampsWhenRunningJobsOverlap) {
  AvailabilityProfile p(at(0), 32);
  p.subtract(at(0), at(100), 30);  // running jobs already use 30
  reserve_dynamic_partition(p, 8);
  EXPECT_EQ(p.free_at(at(50)), 0);   // clamped, not negative
  EXPECT_EQ(p.free_at(at(200)), 24);
}

TEST(Partition, WholeMachineRejected) {
  AvailabilityProfile p(at(0), 32);
  EXPECT_THROW(reserve_dynamic_partition(p, 32), precondition_error);
  EXPECT_THROW(reserve_dynamic_partition(p, -1), precondition_error);
}

}  // namespace
}  // namespace dbs::core
