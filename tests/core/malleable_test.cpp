#include "core/malleable.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "common/assert.hpp"

namespace dbs::core {
namespace {

struct Fixture {
  std::vector<std::unique_ptr<rms::Job>> storage;

  const rms::Job* running(std::uint64_t id, CoreCount cores,
                          CoreCount malleable_min) {
    rms::JobSpec s = test::spec("j" + std::to_string(id), cores,
                                Duration::minutes(30));
    s.malleable_min = malleable_min;
    storage.push_back(std::make_unique<rms::Job>(
        JobId{id}, s, test::rigid(Duration::minutes(10)), Time::epoch()));
    storage.back()->mark_started(
        Time::epoch(), cluster::Placement{{{NodeId{0}, cores}}}, false);
    return storage.back().get();
  }

  std::vector<const rms::Job*> all() const {
    std::vector<const rms::Job*> out;
    for (const auto& j : storage) out.push_back(j.get());
    return out;
  }
};

TEST(MalleableSteal, NothingNeededWhenFreeSuffices) {
  Fixture f;
  f.running(1, 16, 8);
  EXPECT_TRUE(plan_malleable_steal(f.all(), 4, 8).empty());
}

TEST(MalleableSteal, ShrinksLargestSlackFirst) {
  Fixture f;
  f.running(1, 16, 12);  // slack 4
  f.running(2, 16, 4);   // slack 12
  const auto plan = plan_malleable_steal(f.all(), 8, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].job, JobId{2});
  EXPECT_EQ(plan[0].cores, 8);
}

TEST(MalleableSteal, TakesOnlyWhatIsNeeded) {
  Fixture f;
  f.running(1, 16, 4);  // slack 12
  const auto plan = plan_malleable_steal(f.all(), 10, 4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].cores, 6);  // 4 free + 6 stolen = 10
}

TEST(MalleableSteal, CombinesMultipleVictims) {
  Fixture f;
  f.running(1, 8, 4);   // slack 4
  f.running(2, 8, 4);   // slack 4
  f.running(3, 8, 8);   // slack 0 (never shrunk)
  const auto plan = plan_malleable_steal(f.all(), 7, 0);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].cores + plan[1].cores, 7);
}

TEST(MalleableSteal, RigidJobsUntouchable) {
  Fixture f;
  f.running(1, 16, 0);  // not malleable
  EXPECT_TRUE(plan_malleable_steal(f.all(), 4, 0).empty());
}

TEST(MalleableSteal, EmptyWhenTargetUnreachable) {
  Fixture f;
  f.running(1, 8, 6);  // slack 2
  EXPECT_TRUE(plan_malleable_steal(f.all(), 8, 0).empty());
}

TEST(MalleableSteal, ExcludesTheRequester) {
  Fixture f;
  const rms::Job* self = f.running(1, 16, 4);
  EXPECT_TRUE(plan_malleable_steal(f.all(), 4, 0, self->id()).empty());
}

TEST(MalleableSteal, ZeroTargetRejected) {
  Fixture f;
  EXPECT_THROW((void)plan_malleable_steal(f.all(), 0, 0), precondition_error);
}

}  // namespace
}  // namespace dbs::core
