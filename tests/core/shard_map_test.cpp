// The static node partition and the deterministic submission router: the
// two halves of the sharding determinism contract. Every property here is
// load-bearing for replay/recovery — a router that routes one job
// differently on a re-run desynchronizes a shard's WAL from its feeder.
#include "core/shard_map.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace dbs::core {
namespace {

rms::JobSpec job(const std::string& user, CoreCount cores,
                 const std::string& job_class = "batch") {
  rms::JobSpec s;
  s.name = "j_" + user;
  s.cred = {user, "grp", "", job_class, ""};
  s.cores = cores;
  s.walltime = Duration::minutes(30);
  return s;
}

cluster::ClusterSpec machine(std::size_t nodes, CoreCount cores_per_node = 8) {
  cluster::ClusterSpec spec;
  spec.node_count = nodes;
  spec.cores_per_node = cores_per_node;
  return spec;
}

TEST(ShardMap, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors; the routing hash must never
  // drift (it is part of the on-disk replay contract).
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ShardMap, ByRangeSplitsContiguouslyRemainderToFirstShards) {
  const ShardMap map = ShardMap::by_range(machine(10), 4);
  ASSERT_EQ(map.shard_count(), 4u);
  EXPECT_EQ(map.shard(0).cluster.node_count, 3u);
  EXPECT_EQ(map.shard(1).cluster.node_count, 3u);
  EXPECT_EQ(map.shard(2).cluster.node_count, 2u);
  EXPECT_EQ(map.shard(3).cluster.node_count, 2u);
  EXPECT_EQ(map.shard(0).name, "part0");
  EXPECT_EQ(map.shard(3).name, "part3");
  EXPECT_EQ(map.total_nodes(), 10u);
  EXPECT_EQ(map.total_cores(), 80);
  // Contiguous ranges: nodes 0-2 -> 0, 3-5 -> 1, 6-7 -> 2, 8-9 -> 3.
  EXPECT_EQ(map.shard_of_node(0), 0u);
  EXPECT_EQ(map.shard_of_node(2), 0u);
  EXPECT_EQ(map.shard_of_node(3), 1u);
  EXPECT_EQ(map.shard_of_node(6), 2u);
  EXPECT_EQ(map.shard_of_node(9), 3u);
  EXPECT_THROW(map.shard_of_node(10), precondition_error);
}

TEST(ShardMap, ByRangeRejectsDegenerateCounts) {
  EXPECT_THROW(ShardMap::by_range(machine(4), 0), precondition_error);
  EXPECT_THROW(ShardMap::by_range(machine(4), 5), precondition_error);
  const ShardMap one = ShardMap::by_range(machine(4), 1);
  EXPECT_EQ(one.shard_count(), 1u);
  EXPECT_EQ(one.shard(0).cluster.node_count, 4u);
}

TEST(ShardMap, ByHashCoversEveryNodeExactlyOnceAndIsStable) {
  const ShardMap a = ShardMap::by_hash(machine(64), 4);
  const ShardMap b = ShardMap::by_hash(machine(64), 4);
  ASSERT_EQ(a.shard_count(), 4u);
  std::size_t covered = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GE(a.shard(k).cluster.node_count, 1u);
    EXPECT_EQ(a.shard(k).cluster.node_count, b.shard(k).cluster.node_count);
    covered += a.shard(k).cluster.node_count;
  }
  EXPECT_EQ(covered, 64u);
  for (std::size_t node = 0; node < 64; ++node)
    EXPECT_EQ(a.shard_of_node(node), b.shard_of_node(node)) << node;
}

TEST(ShardMap, ByPartitionsNamedLookupAndValidation) {
  std::vector<ShardSpec> parts(2);
  parts[0].name = "cpu";
  parts[0].cluster = machine(12, 8);
  parts[1].name = "gpu";
  parts[1].cluster = machine(4, 16);
  const ShardMap map = ShardMap::by_partitions(parts);
  EXPECT_EQ(map.shard_named("cpu"), 0u);
  EXPECT_EQ(map.shard_named("gpu"), 1u);
  EXPECT_EQ(map.shard_named("tpu"), ShardMap::npos);
  EXPECT_EQ(map.total_cores(), 12 * 8 + 4 * 16);
  // Nodes are numbered shard-major in partition order.
  EXPECT_EQ(map.shard_of_node(11), 0u);
  EXPECT_EQ(map.shard_of_node(12), 1u);

  parts[1].name = "cpu";
  EXPECT_THROW(ShardMap::by_partitions(parts), precondition_error);
  parts[1].name = "";
  EXPECT_THROW(ShardMap::by_partitions(parts), precondition_error);
  parts[1].name = "gpu";
  parts[1].cluster.node_count = 0;
  EXPECT_THROW(ShardMap::by_partitions(parts), precondition_error);
  EXPECT_THROW(ShardMap::by_partitions({}), precondition_error);
}

TEST(ShardRouter, EveryJobRoutesToExactlyOneValidShard) {
  const ShardMap map = ShardMap::by_range(machine(16), 4);
  for (const RoutePolicy policy :
       {RoutePolicy::UserHash, RoutePolicy::Partition,
        RoutePolicy::LeastLoaded}) {
    ShardRouter router(map, policy);
    std::uint64_t routed = 0;
    for (int i = 0; i < 500; ++i) {
      const std::size_t k =
          router.route(job("user" + std::to_string(i % 23),
                           static_cast<CoreCount>(1 + i % 16),
                           i % 3 == 0 ? "part2" : "q" + std::to_string(i % 5)));
      ASSERT_LT(k, map.shard_count()) << to_string(policy);
      ++routed;
    }
    std::uint64_t counted = 0;
    for (std::size_t k = 0; k < map.shard_count(); ++k)
      counted += router.routed_jobs(k);
    EXPECT_EQ(counted, routed) << to_string(policy);
  }
}

TEST(ShardRouter, UserHashIsStickyPerUser) {
  const ShardMap map = ShardMap::by_range(machine(16), 4);
  ShardRouter router(map, RoutePolicy::UserHash);
  for (int round = 0; round < 3; ++round)
    for (int u = 0; u < 20; ++u) {
      const std::string user = "user" + std::to_string(u);
      EXPECT_EQ(router.route(job(user, 4)),
                fnv1a64(user) % map.shard_count());
    }
}

TEST(ShardRouter, PartitionPolicyMatchesClassWithUserHashFallback) {
  std::vector<ShardSpec> parts(3);
  parts[0] = {"small", machine(8)};
  parts[1] = {"large", machine(8)};
  parts[2] = {"debug", machine(2)};
  const ShardMap map = ShardMap::by_partitions(parts);
  ShardRouter router(map, RoutePolicy::Partition);
  EXPECT_EQ(router.route(job("alice", 4, "large")), 1u);
  EXPECT_EQ(router.route(job("bob", 4, "debug")), 2u);
  EXPECT_EQ(router.route(job("bob", 4, "small")), 0u);
  // Unknown class: deterministic user-hash spread, not a shard-0 hotspot.
  EXPECT_EQ(router.route(job("carol", 4, "unknown_q")),
            fnv1a64("carol") % 3);
}

TEST(ShardRouter, LeastLoadedDealsEqualJobsRoundRobin) {
  const ShardMap map = ShardMap::by_range(machine(16), 4);
  ShardRouter router(map, RoutePolicy::LeastLoaded);
  for (int i = 0; i < 24; ++i)
    EXPECT_EQ(router.route(job("u" + std::to_string(i), 8)),
              static_cast<std::size_t>(i % 4))
        << i;
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(router.routed_jobs(k), 6u);
    EXPECT_EQ(router.routed_cores()[k], 48u);
  }
}

TEST(ShardRouter, LeastLoadedFillsUnequalPartitionsProportionally) {
  std::vector<ShardSpec> parts(2);
  parts[0] = {"big", machine(12)};    // 96 cores
  parts[1] = {"small", machine(4)};   // 32 cores: 1/4 the capacity
  const ShardMap map = ShardMap::by_partitions(parts);
  ShardRouter router(map, RoutePolicy::LeastLoaded);
  for (int i = 0; i < 64; ++i) router.route(job("u" + std::to_string(i), 4));
  // Capacity-relative argmin: the big partition takes ~3/4 of the stream.
  EXPECT_EQ(router.routed_jobs(0), 48u);
  EXPECT_EQ(router.routed_jobs(1), 16u);
}

TEST(ShardRouter, ZeroCoreJobsStillChargeTheLedger) {
  // A pathological 0-core spec must still advance the least-loaded ledger
  // or a stream of them would pin to shard 0 forever.
  const ShardMap map = ShardMap::by_range(machine(8), 2);
  ShardRouter router(map, RoutePolicy::LeastLoaded);
  EXPECT_EQ(router.route(job("a", 0)), 0u);
  EXPECT_EQ(router.route(job("b", 0)), 1u);
  EXPECT_EQ(router.route(job("c", 0)), 0u);
  EXPECT_EQ(router.routed_cores()[0], 2u);
}

TEST(ShardRouter, RestoredLedgerContinuesTheExactRoutingSequence) {
  // The recovery property: a router reseeded from durable per-shard
  // submit totals routes the suffix of the stream exactly as the
  // never-restarted router would have.
  const ShardMap map = ShardMap::by_range(machine(16), 4);
  std::vector<rms::JobSpec> stream;
  for (int i = 0; i < 200; ++i)
    stream.push_back(job("user" + std::to_string(i % 7),
                         static_cast<CoreCount>(1 + (i * 5) % 12)));

  ShardRouter uninterrupted(map, RoutePolicy::LeastLoaded);
  std::vector<std::size_t> expected;
  for (const auto& s : stream) expected.push_back(uninterrupted.route(s));

  constexpr std::size_t kCut = 113;  // "crash" after 113 routed submits
  ShardRouter before(map, RoutePolicy::LeastLoaded);
  for (std::size_t i = 0; i < kCut; ++i)
    EXPECT_EQ(before.route(stream[i]), expected[i]);

  ShardRouter after(map, RoutePolicy::LeastLoaded);
  std::vector<std::uint64_t> jobs;
  for (std::size_t k = 0; k < map.shard_count(); ++k)
    jobs.push_back(before.routed_jobs(k));
  after.restore(before.routed_cores(), jobs);
  for (std::size_t i = kCut; i < stream.size(); ++i)
    EXPECT_EQ(after.route(stream[i]), expected[i]) << i;
}

TEST(ShardRouter, RestoreRejectsWrongArity) {
  const ShardMap map = ShardMap::by_range(machine(8), 2);
  ShardRouter router(map, RoutePolicy::LeastLoaded);
  EXPECT_THROW(router.restore({1, 2, 3}, {1, 2}), precondition_error);
  EXPECT_THROW(router.restore({1, 2}, {1}), precondition_error);
}

}  // namespace
}  // namespace dbs::core
