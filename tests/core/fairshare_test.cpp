#include "core/fairshare.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace dbs::core {
namespace {

Credentials user(std::string u) { return {std::move(u), "", "", "", ""}; }

FairshareConfig cfg() {
  FairshareConfig c;
  c.enabled = true;
  c.interval = Duration::hours(1);
  c.depth = 4;
  c.decay = 0.5;
  c.user_targets["alice"] = 60.0;
  c.user_targets["bob"] = 40.0;
  return c;
}

TEST(Fairshare, DisabledContributesNothing) {
  Fairshare fs{FairshareConfig{}};
  fs.record_usage(user("alice"), 100.0, Time::from_seconds(10));
  EXPECT_DOUBLE_EQ(fs.component(user("alice")), 0.0);
  EXPECT_DOUBLE_EQ(fs.effective_usage("alice"), 0.0);
}

TEST(Fairshare, UsageAccumulatesInCurrentWindow) {
  Fairshare fs(cfg());
  fs.record_usage(user("alice"), 100.0, Time::from_seconds(10));
  fs.record_usage(user("alice"), 50.0, Time::from_seconds(20));
  EXPECT_DOUBLE_EQ(fs.effective_usage("alice"), 150.0);
}

TEST(Fairshare, WindowsDecayAcrossIntervals) {
  Fairshare fs(cfg());
  fs.record_usage(user("alice"), 100.0, Time::from_seconds(10));
  fs.advance_to(Time::from_seconds(3600 + 10));
  // One window old: weighted by decay 0.5.
  EXPECT_DOUBLE_EQ(fs.effective_usage("alice"), 50.0);
  fs.advance_to(Time::from_seconds(2 * 3600 + 10));
  EXPECT_DOUBLE_EQ(fs.effective_usage("alice"), 25.0);
}

TEST(Fairshare, DepthLimitsHistory) {
  Fairshare fs(cfg());  // depth 4
  fs.record_usage(user("alice"), 100.0, Time::from_seconds(10));
  fs.advance_to(Time::from_seconds(10 * 3600));
  EXPECT_DOUBLE_EQ(fs.effective_usage("alice"), 0.0);
}

TEST(Fairshare, ComponentReflectsTargetMinusUsage) {
  Fairshare fs(cfg());
  fs.record_usage(user("alice"), 300.0, Time::from_seconds(10));
  fs.record_usage(user("bob"), 100.0, Time::from_seconds(10));
  // alice used 75% with a 60% target -> negative component.
  EXPECT_DOUBLE_EQ(fs.component(user("alice")), 60.0 - 75.0);
  EXPECT_DOUBLE_EQ(fs.component(user("bob")), 40.0 - 25.0);
}

TEST(Fairshare, UnconfiguredUserHasNoComponent) {
  Fairshare fs(cfg());
  fs.record_usage(user("eve"), 500.0, Time::from_seconds(10));
  EXPECT_DOUBLE_EQ(fs.component(user("eve")), 0.0);
}

TEST(Fairshare, ZeroUsageComponentIsTarget) {
  Fairshare fs(cfg());
  EXPECT_DOUBLE_EQ(fs.component(user("alice")), 60.0);
}

TEST(Fairshare, ConfigValidation) {
  FairshareConfig bad = cfg();
  bad.interval = Duration::zero();
  EXPECT_THROW(Fairshare{bad}, precondition_error);
  bad = cfg();
  bad.depth = 0;
  EXPECT_THROW(Fairshare{bad}, precondition_error);
  bad = cfg();
  bad.decay = 1.5;
  EXPECT_THROW(Fairshare{bad}, precondition_error);
}

TEST(Fairshare, NegativeUsageRejected) {
  Fairshare fs(cfg());
  EXPECT_THROW(fs.record_usage(user("alice"), -1.0, Time::from_seconds(1)),
               precondition_error);
}

}  // namespace
}  // namespace dbs::core
