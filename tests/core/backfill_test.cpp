// The planning engine: StartNow/StartLater classification, reservation
// depth, backfilling and the Z-job drain rule.
#include "core/backfill.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace dbs::core {
namespace {

struct Fixture {
  std::vector<std::unique_ptr<rms::Job>> storage;

  const rms::Job* job(std::uint64_t id, CoreCount cores, Duration walltime,
                      bool exclusive = false) {
    rms::JobSpec s = test::spec("j" + std::to_string(id), cores, walltime);
    s.exclusive_priority = exclusive;
    storage.push_back(std::make_unique<rms::Job>(
        JobId{id}, s, test::rigid(walltime), Time::epoch()));
    return storage.back().get();
  }
};

Time at(std::int64_t s) { return Time::from_seconds(s); }

TEST(PlanJobs, EverythingStartsNowWhenItFits) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 32, Duration::minutes(10)), f.job(2, 32, Duration::minutes(10))};
  const Plan plan =
      plan_jobs(jobs, AvailabilityProfile(at(0), 128), {at(0), 5, true, false});
  EXPECT_EQ(plan.table.start_now_count(), 2u);
  EXPECT_EQ(plan.profile.free_at(at(0)), 64);
}

TEST(PlanJobs, StartLaterGetsReservationAtEarliestFit) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 100, Duration::minutes(10)),
      f.job(2, 100, Duration::minutes(5))};
  const Plan plan =
      plan_jobs(jobs, AvailabilityProfile(at(0), 128), {at(0), 5, true, false});
  ASSERT_EQ(plan.table.size(), 2u);
  const Reservation* r2 = plan.table.find(JobId{2});
  ASSERT_NE(r2, nullptr);
  EXPECT_FALSE(r2->start_now);
  EXPECT_EQ(r2->start, at(600));  // after job 1's walltime
}

TEST(PlanJobs, ReservationLimitCutsOff) {
  Fixture f;
  std::vector<const rms::Job*> jobs = {f.job(1, 128, Duration::minutes(10))};
  for (std::uint64_t i = 2; i <= 6; ++i)
    jobs.push_back(f.job(i, 128, Duration::minutes(10)));
  const Plan plan =
      plan_jobs(jobs, AvailabilityProfile(at(0), 128), {at(0), 2, true, false});
  // Job 1 starts now; only 2 StartLater reservations are created.
  EXPECT_EQ(plan.table.start_now_count(), 1u);
  EXPECT_EQ(plan.table.start_later_count(), 2u);
  EXPECT_EQ(plan.table.find(JobId{5}), nullptr);
}

TEST(PlanJobs, BackfillMarksOutOfOrderStarts) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 100, Duration::minutes(10)),   // starts now
      f.job(2, 100, Duration::minutes(10)),   // waits (reservation at t=600)
      f.job(3, 20, Duration::minutes(5))};    // fits now -> backfill
  const Plan plan =
      plan_jobs(jobs, AvailabilityProfile(at(0), 128), {at(0), 5, true, false});
  const Reservation* r3 = plan.table.find(JobId{3});
  ASSERT_NE(r3, nullptr);
  EXPECT_TRUE(r3->start_now);
  EXPECT_TRUE(r3->backfilled);
  const Reservation* r1 = plan.table.find(JobId{1});
  EXPECT_FALSE(r1->backfilled);
}

TEST(PlanJobs, BackfillNeverDelaysReservations) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 100, Duration::minutes(10)),
      f.job(2, 100, Duration::minutes(10)),   // reserved at t=600
      f.job(3, 28, Duration::minutes(15))};   // would overlap job 2's window
  const Plan plan =
      plan_jobs(jobs, AvailabilityProfile(at(0), 128), {at(0), 5, true, false});
  const Reservation* r3 = plan.table.find(JobId{3});
  ASSERT_NE(r3, nullptr);
  // 28 cores for 15 min starting now would leave only 0 free at t=600 when
  // job 2 needs 100: 128-28=100 -> exactly fits. Bump to check the boundary:
  EXPECT_EQ(r3->start, at(0));
  // Job 2's reservation still at its baseline earliest time.
  EXPECT_EQ(plan.table.find(JobId{2})->start, at(600));
}

TEST(PlanJobs, DisallowedBackfillSkipsJob) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 100, Duration::minutes(10)),
      f.job(2, 100, Duration::minutes(10)),
      f.job(3, 20, Duration::minutes(5))};
  const Plan plan = plan_jobs(jobs, AvailabilityProfile(at(0), 128),
                              {at(0), 5, /*allow_backfill=*/false, false});
  EXPECT_EQ(plan.table.find(JobId{3}), nullptr);
}

TEST(PlanJobs, OversizedJobIsNeverPlanned) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 200, Duration::minutes(10)),  // bigger than the machine
      f.job(2, 20, Duration::minutes(5))};
  const Plan plan =
      plan_jobs(jobs, AvailabilityProfile(at(0), 128), {at(0), 5, true, false});
  EXPECT_EQ(plan.table.find(JobId{1}), nullptr);
  // Job 2 is a backfill start (someone above it waits).
  ASSERT_NE(plan.table.find(JobId{2}), nullptr);
  EXPECT_TRUE(plan.table.find(JobId{2})->backfilled);
}

TEST(PlanJobs, DrainHoldsEverythingBehindExclusive) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 128, Duration::minutes(2), /*exclusive=*/true),
      f.job(2, 8, Duration::minutes(5))};
  AvailabilityProfile base(at(0), 128);
  base.subtract(at(0), at(300), 64);  // running job until t=300
  const Plan plan = plan_jobs(jobs, base, {at(0), 5, false, /*drain=*/true});
  // Z waits for the running job; job 2 must not start before Z.
  const Reservation* z = plan.table.find(JobId{1});
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->start, at(300));
  const Reservation* r2 = plan.table.find(JobId{2});
  ASSERT_NE(r2, nullptr);
  EXPECT_GE(r2->start, z->start);
  EXPECT_FALSE(r2->start_now);
}

TEST(PlanJobs, DrainEndsWhenExclusiveStartsNow) {
  Fixture f;
  const std::vector<const rms::Job*> jobs = {
      f.job(1, 100, Duration::minutes(2), /*exclusive=*/true),
      f.job(2, 8, Duration::minutes(5))};
  const Plan plan = plan_jobs(jobs, AvailabilityProfile(at(0), 128),
                              {at(0), 5, true, /*drain=*/true});
  EXPECT_TRUE(plan.table.find(JobId{1})->start_now);
  EXPECT_TRUE(plan.table.find(JobId{2})->start_now);
}

TEST(ReplanAll, PlansEveryJobRegardlessOfDepth) {
  Fixture f;
  std::vector<const rms::Job*> jobs;
  for (std::uint64_t i = 1; i <= 6; ++i)
    jobs.push_back(f.job(i, 128, Duration::minutes(10)));
  const ReservationTable table =
      replan_all(jobs, AvailabilityProfile(at(0), 128), {at(0), 1, true, false});
  EXPECT_EQ(table.size(), 6u);
  // Sequential full-machine jobs: each starts when the previous ends.
  for (std::uint64_t i = 1; i <= 6; ++i)
    EXPECT_EQ(table.find(JobId{i})->start, at(static_cast<int>(i - 1) * 600));
}

}  // namespace
}  // namespace dbs::core
