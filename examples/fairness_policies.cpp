// Site configuration of the dynamic fairness policies: parses the paper's
// Fig. 6 configuration file, prints the resulting policy, and demonstrates
// the per-entity decisions of the DFS engine.
//
//   $ ./fairness_policies
#include <iostream>

#include "apps/rigid.hpp"
#include "config/maui_config.hpp"
#include "core/dfs_engine.hpp"

using namespace dbs;

namespace {

// The exact configuration shown in Fig. 6 of the paper.
constexpr const char* kFig6 = R"(
DFSPOLICY          DFSSINGLEANDTARGETDELAY
DFSINTERVAL        06:00:00
DFSDECAY           0.4
USERCFG[user01]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                   DFSSINGLEDELAYTIME=0
USERCFG[user02]    DFSDYNDELAYPERM=0
USERCFG[user03]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                   DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                   DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05]  DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06]  DFSDYNDELAYPERM=0
)";

rms::Job make_queued_job(std::uint64_t id, const std::string& user,
                         const std::string& group) {
  rms::JobSpec spec;
  spec.name = user + "-job";
  spec.cred = {user, group, "", "batch", ""};
  spec.cores = 8;
  spec.walltime = Duration::hours(1);
  return rms::Job(JobId{id}, spec,
                  std::make_unique<apps::RigidApp>(Duration::hours(1)),
                  Time::epoch());
}

void show(core::DfsEngine& engine, const rms::Job& victim, Duration delay) {
  const Credentials evolver{"evolving_user", "cfd", "", "batch", ""};
  const core::DfsVerdict verdict =
      engine.admit(evolver, {{&victim, delay}});
  std::cout << "  delay " << victim.spec().cred.user << " ("
            << (victim.spec().cred.group.empty() ? "-"
                                                 : victim.spec().cred.group)
            << ") by " << delay.to_hms() << " -> " << core::to_string(verdict)
            << "\n";
  if (verdict == core::DfsVerdict::Allowed)
    engine.commit(evolver, {{&victim, delay}});
}

}  // namespace

int main() {
  const core::SchedulerConfig config = cfg::parse_maui_config_or_throw(kFig6);
  std::cout << "parsed Fig. 6 configuration:\n"
            << cfg::render_dfs_config(config.dfs) << "\n";

  core::DfsEngine engine(config.dfs);
  const rms::Job u1 = make_queued_job(1, "user01", "");
  const rms::Job u2 = make_queued_job(2, "user02", "");
  const rms::Job u3 = make_queued_job(3, "user03", "");
  const rms::Job u4 = make_queued_job(4, "user04", "");
  const rms::Job g5 = make_queued_job(5, "user99", "group05");
  const rms::Job g6 = make_queued_job(6, "user98", "group06");

  std::cout << "decisions for a sequence of candidate dynamic allocations:\n";
  // user01: no single-job limit, 1h cumulative budget.
  show(engine, u1, Duration::minutes(50));   // allowed (50m of 1h)
  show(engine, u1, Duration::minutes(20));   // denied (would exceed 1h)
  // user02: may never be delayed.
  show(engine, u2, Duration::seconds(1));    // denied (permission)
  // user03: each job at most 30 minutes, no cumulative limit.
  show(engine, u3, Duration::minutes(29));   // allowed
  show(engine, u3, Duration::minutes(5));    // denied (29+5 > 30 per job)
  // user04: 15 minutes per job, 2h cumulative.
  show(engine, u4, Duration::minutes(16));   // denied (single-job cap)
  show(engine, u4, Duration::minutes(10));   // allowed
  // group05: 4h cumulative for the whole group.
  show(engine, g5, Duration::hours(5));      // denied (group cap)
  show(engine, g5, Duration::hours(3));      // allowed
  // group06: never delayable.
  show(engine, g6, Duration::seconds(1));    // denied (group permission)

  std::cout << "\nafter one 6-hour interval (decay 0.4):\n";
  engine.advance_to(Time::epoch() + Duration::hours(6));
  std::cout << "  user01 carried-over delay: "
            << engine.accumulated(core::DfsEntityKind::User, "user01").to_hms()
            << " (was 00:50:00)\n";
  return 0;
}
