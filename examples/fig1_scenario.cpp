// The paper's Fig. 1 illustration, executed twice: once without dynamic
// fairness (job A's dynamic grab delays queued job C by 4 hours) and once
// with a DFSSINGLEJOBDELAY limit that protects C.
//
//   $ ./fig1_scenario
#include <iostream>

#include "apps/rigid.hpp"
#include "batch/batch_system.hpp"

using namespace dbs;

namespace {

void run(bool with_fairness) {
  batch::SystemConfig config;
  config.cluster.node_count = 6;   // nodes 0..5 as in Fig. 1
  config.cluster.cores_per_node = 8;
  config.latency = rms::LatencyModel::zero();
  config.scheduler.reservation_depth = 5;
  config.scheduler.reservation_delay_depth = 5;
  if (with_fairness) {
    config.scheduler.dfs.policy = core::DfsPolicy::SingleJobDelay;
    config.scheduler.dfs.defaults.single_delay = Duration::hours(1);
  }

  batch::BatchSystem system(config);

  // Job A: nodes 0-1 for an 8-hour slice; grabs two more nodes at t=1h.
  auto app_a = std::make_unique<apps::ScriptedApp>(
      Duration::hours(8),
      std::vector<apps::ScriptedApp::Step>{
          {Duration::hours(1), /*grow=*/16, 0, 1.0, Duration::zero()}});
  rms::JobSpec a;
  a.name = "A";
  a.cred = {"user_a", "g", "", "batch", ""};
  a.cores = 16;
  a.walltime = Duration::hours(8);
  const JobId id_a = system.submit_now(a, std::move(app_a));

  // Job B: nodes 2-3 for 4 hours.
  rms::JobSpec b;
  b.name = "B";
  b.cred = {"user_b", "g", "", "batch", ""};
  b.cores = 16;
  b.walltime = Duration::hours(4);
  system.submit_now(b, std::make_unique<apps::RigidApp>(Duration::hours(4)));

  // Job C: queued, needs 4 nodes; its earliest start is B's end (t=4h)
  // using nodes 2-5 — unless A's dynamic allocation takes nodes 4-5.
  rms::JobSpec c;
  c.name = "C";
  c.cred = {"user_c", "g", "", "batch", ""};
  c.cores = 32;
  c.walltime = Duration::hours(4);
  const JobId id_c =
      system.submit_now(c, std::make_unique<apps::RigidApp>(Duration::hours(4)));

  system.run();

  const auto& rec_a = system.recorder().record(id_a);
  const auto& rec_c = system.recorder().record(id_c);
  std::cout << (with_fairness ? "[DFSSINGLEJOBDELAY=1h] " : "[no fairness]  ")
            << "A's dynamic request: "
            << (rec_a.dyn_grants > 0 ? "GRANTED" : "rejected")
            << "; C started at t=" << rec_c.start->to_string()
            << " (waited " << rec_c.wait_time().to_hms() << ")\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 1: effect of a dynamic allocation of job A on the\n"
               "static reservation of job C (6 nodes; A holds 0-1 for 8h,\n"
               "B holds 2-3 for 4h, C needs 4 nodes).\n\n";
  run(/*with_fairness=*/false);
  run(/*with_fairness=*/true);
  std::cout << "\nWithout fairness A grabs the idle nodes 4-5 and C slips\n"
               "from t=4h to t=8h; the single-job delay cap rejects the\n"
               "grab and C keeps its reservation.\n";
  return 0;
}
