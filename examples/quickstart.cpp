// Quickstart: build a batch system, submit rigid and evolving jobs, run the
// simulation, and inspect the outcome.
//
//   $ ./quickstart
#include <iostream>

#include "apps/rigid.hpp"
#include "batch/batch_system.hpp"

using namespace dbs;

int main() {
  // A 4-node cluster with 8 cores per node and default daemon latencies.
  batch::SystemConfig config;
  config.cluster.node_count = 4;
  config.cluster.cores_per_node = 8;
  // Protect up to 5 queued jobs with reservations and delay measurement;
  // cap the delay any single queued job may suffer from dynamic
  // allocations at 10 minutes.
  config.scheduler.reservation_depth = 5;
  config.scheduler.reservation_delay_depth = 5;
  config.scheduler.dfs.policy = core::DfsPolicy::SingleJobDelay;
  config.scheduler.dfs.defaults.single_delay = Duration::minutes(10);

  batch::BatchSystem system(config);

  // A rigid job: 16 cores for ~20 minutes.
  rms::JobSpec rigid;
  rigid.name = "rigid-sim";
  rigid.cred = {"alice", "physics", "", "batch", ""};
  rigid.cores = 16;
  rigid.walltime = Duration::minutes(25);
  system.submit_now(rigid,
                    std::make_unique<apps::RigidApp>(Duration::minutes(20)));

  // An evolving job: starts on 8 cores, asks for 4 more after 16 % of its
  // static execution time (the dynamic-ESP behaviour), finishing earlier
  // if the request is granted.
  wl::Behavior evolving;
  evolving.static_runtime = Duration::minutes(30);
  evolving.evolving = true;
  evolving.ask_cores = 4;
  rms::JobSpec evo;
  evo.name = "adaptive-sim";
  evo.cred = {"bob", "cfd", "", "batch", ""};
  evo.cores = 8;
  evo.walltime = Duration::minutes(30);
  system.submit_at(Time::from_seconds(30), evo,
                   [evolving] { return apps::make_application(evolving); });

  // Run the whole simulation to completion.
  system.run();

  // Report.
  std::cout << "simulated " << system.simulator().events_fired()
            << " events over "
            << system.simulator().now().to_string() << " (HH:MM:SS)\n\n";
  for (const auto& record : system.recorder().records()) {
    std::cout << record.name << " [" << record.user << "] cores "
              << record.cores_requested << "->" << record.cores_peak
              << ", waited " << record.wait_time().to_hms() << ", ran "
              << (record.turnaround() - record.wait_time()).to_hms();
    if (record.evolving)
      std::cout << " (dynamic requests: " << record.dyn_requests
                << ", granted: " << record.dyn_grants << ")";
    std::cout << "\n";
  }
  return 0;
}
