// An adaptive flow solver (the Quadflow stand-in) submitted to the batch
// system: runs the quadtree AMR engine to produce the per-phase grid sizes,
// then executes the job with dynamic expansion at the threshold-crossing
// adaptation — alongside rigid jobs competing for the same cluster.
//
//   $ ./amr_flow_solver
#include <iostream>

#include "amr/cases.hpp"
#include "apps/quadflow_model.hpp"
#include "apps/rigid.hpp"
#include "batch/batch_system.hpp"

using namespace dbs;

int main() {
  // 1) Run the AMR substrate: sensor-driven refinement on a quadtree.
  const amr::QuadflowCase cylinder = amr::cylinder_case();
  std::cout << "AMR adaptation trace for " << cylinder.name << ":\n  cells:";
  for (const std::size_t cells : cylinder.cells_per_phase)
    std::cout << " " << cells;
  std::cout << "\n  a dynamic request is warranted when an adaptation leaves\n"
            << "  more than " << cylinder.threshold_cells_per_proc
            << " cells per process\n\n";

  // 2) Submit the solver (16 cores) to a busy 6-node cluster.
  batch::SystemConfig config;
  config.cluster.node_count = 6;
  config.cluster.cores_per_node = 8;
  batch::BatchSystem system(config);

  rms::JobSpec solver;
  solver.name = cylinder.name;
  solver.cred = {"cfd_user", "cfd", "", "batch", ""};
  solver.cores = 16;
  solver.walltime = apps::quadflow_static(cylinder, 16).total().scaled(1.2);
  const JobId solver_id = system.submit_now(
      solver, std::make_unique<apps::QuadflowApp>(cylinder, /*extra=*/16));

  // Rigid background jobs occupying two nodes for the first hours.
  for (int i = 0; i < 2; ++i) {
    rms::JobSpec r;
    r.name = "background-" + std::to_string(i);
    r.cred = {"other", "g", "", "batch", ""};
    r.cores = 8;
    r.walltime = Duration::hours(3);
    system.submit_now(r, std::make_unique<apps::RigidApp>(Duration::hours(3)));
  }

  system.run();

  const auto& rec = system.recorder().record(solver_id);
  std::cout << "solver: started at " << rec.start->to_string() << ", cores "
            << rec.cores_requested << " -> " << rec.cores_peak
            << ", dynamic requests " << rec.dyn_requests << " (granted "
            << rec.dyn_grants << ")\n"
            << "turnaround " << rec.turnaround().to_hms() << "  vs  static-16 "
            << apps::quadflow_static(cylinder, 16).total().to_hms()
            << "  vs  static-32 "
            << apps::quadflow_static(cylinder, 32).total().to_hms() << "\n";
  return 0;
}
