// A small experiment-campaign driver around the dynamic ESP benchmark:
//
//   $ ./esp_campaign                      # the paper's four configurations
//   $ ./esp_campaign --seed 7 --cores 256 # a different machine / ordering
//   $ ./esp_campaign --trace out.trace    # dump the workload and exit
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "batch/esp_experiment.hpp"
#include "common/table.hpp"
#include "workload/trace.hpp"

using namespace dbs;

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed N] [--cores N] [--limit500 S] [--limit600 S] "
               "[--trace FILE]\n";
}

}  // namespace

int main(int argc, char** argv) {
  batch::EspExperimentParams params;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      params.workload.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--cores") {
      params.workload.total_cores = static_cast<CoreCount>(std::atoi(next()));
    } else if (arg == "--limit500") {
      params.dyn500_limit = Duration::seconds(std::atoll(next()));
    } else if (arg == "--limit600") {
      params.dyn600_limit = Duration::seconds(std::atoll(next()));
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (!trace_path.empty()) {
    const wl::Workload workload = wl::generate_esp(params.workload);
    std::ofstream out(trace_path);
    wl::write_trace(out, workload);
    std::cout << "wrote " << workload.jobs.size() << " jobs to " << trace_path
              << "\n";
    return 0;
  }

  std::cout << "dynamic ESP campaign on " << params.workload.total_cores
            << " cores (seed " << params.workload.seed << ")\n\n";
  const auto results = batch::run_esp_all(params);
  const double baseline_tp = results[0].summary.throughput_jobs_per_min;
  TextTable table(metrics::performance_header());
  for (std::size_t i = 0; i < results.size(); ++i)
    table.add_row(metrics::performance_row(results[i].label,
                                           results[i].summary,
                                           i == 0 ? 0.0 : baseline_tp));
  std::cout << table.to_string();
  return 0;
}
