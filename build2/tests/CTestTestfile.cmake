# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/test_common[1]_include.cmake")
include("/root/repo/build2/tests/test_sim[1]_include.cmake")
include("/root/repo/build2/tests/test_cluster[1]_include.cmake")
include("/root/repo/build2/tests/test_rms[1]_include.cmake")
include("/root/repo/build2/tests/test_core[1]_include.cmake")
include("/root/repo/build2/tests/test_config[1]_include.cmake")
include("/root/repo/build2/tests/test_workload[1]_include.cmake")
include("/root/repo/build2/tests/test_apps[1]_include.cmake")
include("/root/repo/build2/tests/test_amr[1]_include.cmake")
include("/root/repo/build2/tests/test_metrics[1]_include.cmake")
include("/root/repo/build2/tests/test_obs[1]_include.cmake")
include("/root/repo/build2/tests/test_integration[1]_include.cmake")
include("/root/repo/build2/tests/test_property[1]_include.cmake")
