
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/esp_experiment_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/esp_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/esp_experiment_test.cpp.o.d"
  "/root/repo/tests/integration/evolving_end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/evolving_end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/evolving_end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fairness_end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/fairness_end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/fairness_end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fault_tolerance_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/fault_tolerance_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/fault_tolerance_test.cpp.o.d"
  "/root/repo/tests/integration/fig1_scenario_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/fig1_scenario_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/fig1_scenario_test.cpp.o.d"
  "/root/repo/tests/integration/malleable_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/malleable_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/malleable_test.cpp.o.d"
  "/root/repo/tests/integration/negotiation_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/negotiation_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/negotiation_test.cpp.o.d"
  "/root/repo/tests/integration/preemption_partition_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/preemption_partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/preemption_partition_test.cpp.o.d"
  "/root/repo/tests/integration/quadflow_experiment_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/quadflow_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/quadflow_experiment_test.cpp.o.d"
  "/root/repo/tests/integration/small_cluster_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/small_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/small_cluster_test.cpp.o.d"
  "/root/repo/tests/integration/zjob_drain_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/zjob_drain_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/zjob_drain_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
