file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/determinism_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/determinism_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/esp_experiment_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/esp_experiment_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/evolving_end_to_end_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/evolving_end_to_end_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/fairness_end_to_end_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/fairness_end_to_end_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/fault_tolerance_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/fault_tolerance_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/fig1_scenario_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/fig1_scenario_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/malleable_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/malleable_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/negotiation_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/negotiation_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/preemption_partition_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/preemption_partition_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/quadflow_experiment_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/quadflow_experiment_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/small_cluster_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/small_cluster_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/zjob_drain_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/zjob_drain_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
