file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/cluster_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/cluster_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/dfs_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/dfs_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/profile_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/profile_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/scheduler_invariants_test.cpp.o"
  "CMakeFiles/test_property.dir/property/scheduler_invariants_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/sim_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/sim_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/workload_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/workload_property_test.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
