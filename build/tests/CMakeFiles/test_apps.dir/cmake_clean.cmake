file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/evolving_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/evolving_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/quadflow_model_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/quadflow_model_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/resilient_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/resilient_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/rigid_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/rigid_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/scripted_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/scripted_test.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
