
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/availability_profile_test.cpp" "tests/CMakeFiles/test_core.dir/core/availability_profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/availability_profile_test.cpp.o.d"
  "/root/repo/tests/core/backfill_test.cpp" "tests/CMakeFiles/test_core.dir/core/backfill_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/backfill_test.cpp.o.d"
  "/root/repo/tests/core/delay_measurement_test.cpp" "tests/CMakeFiles/test_core.dir/core/delay_measurement_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/delay_measurement_test.cpp.o.d"
  "/root/repo/tests/core/dfs_engine_test.cpp" "tests/CMakeFiles/test_core.dir/core/dfs_engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/dfs_engine_test.cpp.o.d"
  "/root/repo/tests/core/dfs_policy_test.cpp" "tests/CMakeFiles/test_core.dir/core/dfs_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/dfs_policy_test.cpp.o.d"
  "/root/repo/tests/core/fairshare_test.cpp" "tests/CMakeFiles/test_core.dir/core/fairshare_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/fairshare_test.cpp.o.d"
  "/root/repo/tests/core/malleable_test.cpp" "tests/CMakeFiles/test_core.dir/core/malleable_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/malleable_test.cpp.o.d"
  "/root/repo/tests/core/maui_scheduler_test.cpp" "tests/CMakeFiles/test_core.dir/core/maui_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/maui_scheduler_test.cpp.o.d"
  "/root/repo/tests/core/negotiation_test.cpp" "tests/CMakeFiles/test_core.dir/core/negotiation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/negotiation_test.cpp.o.d"
  "/root/repo/tests/core/partition_test.cpp" "tests/CMakeFiles/test_core.dir/core/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/partition_test.cpp.o.d"
  "/root/repo/tests/core/preemption_test.cpp" "tests/CMakeFiles/test_core.dir/core/preemption_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/preemption_test.cpp.o.d"
  "/root/repo/tests/core/priority_test.cpp" "tests/CMakeFiles/test_core.dir/core/priority_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/priority_test.cpp.o.d"
  "/root/repo/tests/core/reservation_table_test.cpp" "tests/CMakeFiles/test_core.dir/core/reservation_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/reservation_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
