file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/availability_profile_test.cpp.o"
  "CMakeFiles/test_core.dir/core/availability_profile_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/backfill_test.cpp.o"
  "CMakeFiles/test_core.dir/core/backfill_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/delay_measurement_test.cpp.o"
  "CMakeFiles/test_core.dir/core/delay_measurement_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dfs_engine_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dfs_engine_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dfs_policy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dfs_policy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/fairshare_test.cpp.o"
  "CMakeFiles/test_core.dir/core/fairshare_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/malleable_test.cpp.o"
  "CMakeFiles/test_core.dir/core/malleable_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/maui_scheduler_test.cpp.o"
  "CMakeFiles/test_core.dir/core/maui_scheduler_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/negotiation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/negotiation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/partition_test.cpp.o"
  "CMakeFiles/test_core.dir/core/partition_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/preemption_test.cpp.o"
  "CMakeFiles/test_core.dir/core/preemption_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/priority_test.cpp.o"
  "CMakeFiles/test_core.dir/core/priority_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/reservation_table_test.cpp.o"
  "CMakeFiles/test_core.dir/core/reservation_table_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
