file(REMOVE_RECURSE
  "CMakeFiles/test_rms.dir/rms/dynamic_protocol_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/dynamic_protocol_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/job_queue_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/job_queue_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/job_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/job_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/mom_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/mom_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/server_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/server_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/status_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/status_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/tm_interface_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/tm_interface_test.cpp.o.d"
  "test_rms"
  "test_rms.pdb"
  "test_rms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
