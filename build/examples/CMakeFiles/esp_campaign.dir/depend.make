# Empty dependencies file for esp_campaign.
# This may be replaced when dependencies are built.
