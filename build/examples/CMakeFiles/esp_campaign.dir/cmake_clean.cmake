file(REMOVE_RECURSE
  "CMakeFiles/esp_campaign.dir/esp_campaign.cpp.o"
  "CMakeFiles/esp_campaign.dir/esp_campaign.cpp.o.d"
  "esp_campaign"
  "esp_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
