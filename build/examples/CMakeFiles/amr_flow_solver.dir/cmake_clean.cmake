file(REMOVE_RECURSE
  "CMakeFiles/amr_flow_solver.dir/amr_flow_solver.cpp.o"
  "CMakeFiles/amr_flow_solver.dir/amr_flow_solver.cpp.o.d"
  "amr_flow_solver"
  "amr_flow_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_flow_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
