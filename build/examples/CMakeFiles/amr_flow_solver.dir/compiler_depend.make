# Empty compiler generated dependencies file for amr_flow_solver.
# This may be replaced when dependencies are built.
