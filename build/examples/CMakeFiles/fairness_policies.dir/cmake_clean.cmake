file(REMOVE_RECURSE
  "CMakeFiles/fairness_policies.dir/fairness_policies.cpp.o"
  "CMakeFiles/fairness_policies.dir/fairness_policies.cpp.o.d"
  "fairness_policies"
  "fairness_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
