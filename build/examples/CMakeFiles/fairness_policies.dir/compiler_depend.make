# Empty compiler generated dependencies file for fairness_policies.
# This may be replaced when dependencies are built.
