file(REMOVE_RECURSE
  "CMakeFiles/fig1_scenario.dir/fig1_scenario.cpp.o"
  "CMakeFiles/fig1_scenario.dir/fig1_scenario.cpp.o.d"
  "fig1_scenario"
  "fig1_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
