file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_quadflow.dir/bench_fig7_quadflow.cpp.o"
  "CMakeFiles/bench_fig7_quadflow.dir/bench_fig7_quadflow.cpp.o.d"
  "bench_fig7_quadflow"
  "bench_fig7_quadflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_quadflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
