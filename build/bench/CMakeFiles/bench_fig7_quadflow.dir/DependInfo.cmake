
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_quadflow.cpp" "bench/CMakeFiles/bench_fig7_quadflow.dir/bench_fig7_quadflow.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_quadflow.dir/bench_fig7_quadflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
