# Empty dependencies file for bench_fig7_quadflow.
# This may be replaced when dependencies are built.
