file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mix.dir/bench_ablation_mix.cpp.o"
  "CMakeFiles/bench_ablation_mix.dir/bench_ablation_mix.cpp.o.d"
  "bench_ablation_mix"
  "bench_ablation_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
