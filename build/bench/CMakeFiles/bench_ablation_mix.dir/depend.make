# Empty dependencies file for bench_ablation_mix.
# This may be replaced when dependencies are built.
