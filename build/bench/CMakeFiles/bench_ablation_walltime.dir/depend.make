# Empty dependencies file for bench_ablation_walltime.
# This may be replaced when dependencies are built.
