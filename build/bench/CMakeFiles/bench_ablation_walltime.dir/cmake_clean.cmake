file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_walltime.dir/bench_ablation_walltime.cpp.o"
  "CMakeFiles/bench_ablation_walltime.dir/bench_ablation_walltime.cpp.o.d"
  "bench_ablation_walltime"
  "bench_ablation_walltime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_walltime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
