# Empty compiler generated dependencies file for bench_fig8_waiting_hp.
# This may be replaced when dependencies are built.
