file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_waiting_hp.dir/bench_fig8_waiting_hp.cpp.o"
  "CMakeFiles/bench_fig8_waiting_hp.dir/bench_fig8_waiting_hp.cpp.o.d"
  "bench_fig8_waiting_hp"
  "bench_fig8_waiting_hp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_waiting_hp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
