file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_typeL.dir/bench_fig9_typeL.cpp.o"
  "CMakeFiles/bench_fig9_typeL.dir/bench_fig9_typeL.cpp.o.d"
  "bench_fig9_typeL"
  "bench_fig9_typeL.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_typeL.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
