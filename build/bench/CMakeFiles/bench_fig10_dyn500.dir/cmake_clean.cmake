file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dyn500.dir/bench_fig10_dyn500.cpp.o"
  "CMakeFiles/bench_fig10_dyn500.dir/bench_fig10_dyn500.cpp.o.d"
  "bench_fig10_dyn500"
  "bench_fig10_dyn500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dyn500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
