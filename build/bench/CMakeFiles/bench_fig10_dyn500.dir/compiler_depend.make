# Empty compiler generated dependencies file for bench_fig10_dyn500.
# This may be replaced when dependencies are built.
