file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dyn600.dir/bench_fig11_dyn600.cpp.o"
  "CMakeFiles/bench_fig11_dyn600.dir/bench_fig11_dyn600.cpp.o.d"
  "bench_fig11_dyn600"
  "bench_fig11_dyn600.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dyn600.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
