# Empty compiler generated dependencies file for bench_fig11_dyn600.
# This may be replaced when dependencies are built.
