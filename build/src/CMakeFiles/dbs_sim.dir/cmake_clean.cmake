file(REMOVE_RECURSE
  "CMakeFiles/dbs_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/dbs_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/dbs_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/dbs_sim.dir/sim/simulator.cpp.o.d"
  "libdbs_sim.a"
  "libdbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
