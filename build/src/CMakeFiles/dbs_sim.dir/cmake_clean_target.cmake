file(REMOVE_RECURSE
  "libdbs_sim.a"
)
