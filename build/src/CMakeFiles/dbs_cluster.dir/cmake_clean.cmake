file(REMOVE_RECURSE
  "CMakeFiles/dbs_cluster.dir/cluster/allocation_policy.cpp.o"
  "CMakeFiles/dbs_cluster.dir/cluster/allocation_policy.cpp.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/cluster.cpp.o"
  "CMakeFiles/dbs_cluster.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/node.cpp.o"
  "CMakeFiles/dbs_cluster.dir/cluster/node.cpp.o.d"
  "libdbs_cluster.a"
  "libdbs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
