file(REMOVE_RECURSE
  "CMakeFiles/dbs_common.dir/common/log.cpp.o"
  "CMakeFiles/dbs_common.dir/common/log.cpp.o.d"
  "CMakeFiles/dbs_common.dir/common/string_util.cpp.o"
  "CMakeFiles/dbs_common.dir/common/string_util.cpp.o.d"
  "CMakeFiles/dbs_common.dir/common/table.cpp.o"
  "CMakeFiles/dbs_common.dir/common/table.cpp.o.d"
  "CMakeFiles/dbs_common.dir/common/time.cpp.o"
  "CMakeFiles/dbs_common.dir/common/time.cpp.o.d"
  "libdbs_common.a"
  "libdbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
