file(REMOVE_RECURSE
  "libdbs_common.a"
)
