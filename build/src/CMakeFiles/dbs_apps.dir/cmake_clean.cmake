file(REMOVE_RECURSE
  "CMakeFiles/dbs_apps.dir/apps/app_model.cpp.o"
  "CMakeFiles/dbs_apps.dir/apps/app_model.cpp.o.d"
  "CMakeFiles/dbs_apps.dir/apps/evolving.cpp.o"
  "CMakeFiles/dbs_apps.dir/apps/evolving.cpp.o.d"
  "CMakeFiles/dbs_apps.dir/apps/quadflow_model.cpp.o"
  "CMakeFiles/dbs_apps.dir/apps/quadflow_model.cpp.o.d"
  "CMakeFiles/dbs_apps.dir/apps/resilient.cpp.o"
  "CMakeFiles/dbs_apps.dir/apps/resilient.cpp.o.d"
  "CMakeFiles/dbs_apps.dir/apps/rigid.cpp.o"
  "CMakeFiles/dbs_apps.dir/apps/rigid.cpp.o.d"
  "libdbs_apps.a"
  "libdbs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
