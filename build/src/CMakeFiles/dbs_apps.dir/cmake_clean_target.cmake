file(REMOVE_RECURSE
  "libdbs_apps.a"
)
