# Empty compiler generated dependencies file for dbs_apps.
# This may be replaced when dependencies are built.
