
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/esp.cpp" "src/CMakeFiles/dbs_workload.dir/workload/esp.cpp.o" "gcc" "src/CMakeFiles/dbs_workload.dir/workload/esp.cpp.o.d"
  "/root/repo/src/workload/submission.cpp" "src/CMakeFiles/dbs_workload.dir/workload/submission.cpp.o" "gcc" "src/CMakeFiles/dbs_workload.dir/workload/submission.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/dbs_workload.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/dbs_workload.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/dbs_workload.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/dbs_workload.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
