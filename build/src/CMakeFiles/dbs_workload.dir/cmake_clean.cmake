file(REMOVE_RECURSE
  "CMakeFiles/dbs_workload.dir/workload/esp.cpp.o"
  "CMakeFiles/dbs_workload.dir/workload/esp.cpp.o.d"
  "CMakeFiles/dbs_workload.dir/workload/submission.cpp.o"
  "CMakeFiles/dbs_workload.dir/workload/submission.cpp.o.d"
  "CMakeFiles/dbs_workload.dir/workload/synthetic.cpp.o"
  "CMakeFiles/dbs_workload.dir/workload/synthetic.cpp.o.d"
  "CMakeFiles/dbs_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/dbs_workload.dir/workload/trace.cpp.o.d"
  "libdbs_workload.a"
  "libdbs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
