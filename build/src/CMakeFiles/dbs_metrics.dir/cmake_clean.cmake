file(REMOVE_RECURSE
  "CMakeFiles/dbs_metrics.dir/metrics/recorder.cpp.o"
  "CMakeFiles/dbs_metrics.dir/metrics/recorder.cpp.o.d"
  "CMakeFiles/dbs_metrics.dir/metrics/report.cpp.o"
  "CMakeFiles/dbs_metrics.dir/metrics/report.cpp.o.d"
  "libdbs_metrics.a"
  "libdbs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
