file(REMOVE_RECURSE
  "libdbs_metrics.a"
)
