# Empty dependencies file for dbs_metrics.
# This may be replaced when dependencies are built.
