
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rms/comm.cpp" "src/CMakeFiles/dbs_rms.dir/rms/comm.cpp.o" "gcc" "src/CMakeFiles/dbs_rms.dir/rms/comm.cpp.o.d"
  "/root/repo/src/rms/job.cpp" "src/CMakeFiles/dbs_rms.dir/rms/job.cpp.o" "gcc" "src/CMakeFiles/dbs_rms.dir/rms/job.cpp.o.d"
  "/root/repo/src/rms/job_queue.cpp" "src/CMakeFiles/dbs_rms.dir/rms/job_queue.cpp.o" "gcc" "src/CMakeFiles/dbs_rms.dir/rms/job_queue.cpp.o.d"
  "/root/repo/src/rms/mom.cpp" "src/CMakeFiles/dbs_rms.dir/rms/mom.cpp.o" "gcc" "src/CMakeFiles/dbs_rms.dir/rms/mom.cpp.o.d"
  "/root/repo/src/rms/server.cpp" "src/CMakeFiles/dbs_rms.dir/rms/server.cpp.o" "gcc" "src/CMakeFiles/dbs_rms.dir/rms/server.cpp.o.d"
  "/root/repo/src/rms/status.cpp" "src/CMakeFiles/dbs_rms.dir/rms/status.cpp.o" "gcc" "src/CMakeFiles/dbs_rms.dir/rms/status.cpp.o.d"
  "/root/repo/src/rms/tm_interface.cpp" "src/CMakeFiles/dbs_rms.dir/rms/tm_interface.cpp.o" "gcc" "src/CMakeFiles/dbs_rms.dir/rms/tm_interface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
