# Empty compiler generated dependencies file for dbs_rms.
# This may be replaced when dependencies are built.
