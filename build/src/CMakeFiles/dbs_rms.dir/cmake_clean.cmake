file(REMOVE_RECURSE
  "CMakeFiles/dbs_rms.dir/rms/comm.cpp.o"
  "CMakeFiles/dbs_rms.dir/rms/comm.cpp.o.d"
  "CMakeFiles/dbs_rms.dir/rms/job.cpp.o"
  "CMakeFiles/dbs_rms.dir/rms/job.cpp.o.d"
  "CMakeFiles/dbs_rms.dir/rms/job_queue.cpp.o"
  "CMakeFiles/dbs_rms.dir/rms/job_queue.cpp.o.d"
  "CMakeFiles/dbs_rms.dir/rms/mom.cpp.o"
  "CMakeFiles/dbs_rms.dir/rms/mom.cpp.o.d"
  "CMakeFiles/dbs_rms.dir/rms/server.cpp.o"
  "CMakeFiles/dbs_rms.dir/rms/server.cpp.o.d"
  "CMakeFiles/dbs_rms.dir/rms/status.cpp.o"
  "CMakeFiles/dbs_rms.dir/rms/status.cpp.o.d"
  "CMakeFiles/dbs_rms.dir/rms/tm_interface.cpp.o"
  "CMakeFiles/dbs_rms.dir/rms/tm_interface.cpp.o.d"
  "libdbs_rms.a"
  "libdbs_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
