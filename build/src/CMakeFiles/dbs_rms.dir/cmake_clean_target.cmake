file(REMOVE_RECURSE
  "libdbs_rms.a"
)
