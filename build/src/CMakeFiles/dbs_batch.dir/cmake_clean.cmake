file(REMOVE_RECURSE
  "CMakeFiles/dbs_batch.dir/batch/batch_system.cpp.o"
  "CMakeFiles/dbs_batch.dir/batch/batch_system.cpp.o.d"
  "CMakeFiles/dbs_batch.dir/batch/esp_experiment.cpp.o"
  "CMakeFiles/dbs_batch.dir/batch/esp_experiment.cpp.o.d"
  "CMakeFiles/dbs_batch.dir/batch/experiment.cpp.o"
  "CMakeFiles/dbs_batch.dir/batch/experiment.cpp.o.d"
  "CMakeFiles/dbs_batch.dir/batch/overhead_experiment.cpp.o"
  "CMakeFiles/dbs_batch.dir/batch/overhead_experiment.cpp.o.d"
  "CMakeFiles/dbs_batch.dir/batch/quadflow_experiment.cpp.o"
  "CMakeFiles/dbs_batch.dir/batch/quadflow_experiment.cpp.o.d"
  "libdbs_batch.a"
  "libdbs_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
