# Empty compiler generated dependencies file for dbs_batch.
# This may be replaced when dependencies are built.
