file(REMOVE_RECURSE
  "libdbs_batch.a"
)
