# Empty compiler generated dependencies file for dbs_amr.
# This may be replaced when dependencies are built.
