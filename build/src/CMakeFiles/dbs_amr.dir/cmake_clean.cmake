file(REMOVE_RECURSE
  "CMakeFiles/dbs_amr.dir/amr/cases.cpp.o"
  "CMakeFiles/dbs_amr.dir/amr/cases.cpp.o.d"
  "CMakeFiles/dbs_amr.dir/amr/quadtree.cpp.o"
  "CMakeFiles/dbs_amr.dir/amr/quadtree.cpp.o.d"
  "CMakeFiles/dbs_amr.dir/amr/refinement.cpp.o"
  "CMakeFiles/dbs_amr.dir/amr/refinement.cpp.o.d"
  "CMakeFiles/dbs_amr.dir/amr/sensor.cpp.o"
  "CMakeFiles/dbs_amr.dir/amr/sensor.cpp.o.d"
  "libdbs_amr.a"
  "libdbs_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
