
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/cases.cpp" "src/CMakeFiles/dbs_amr.dir/amr/cases.cpp.o" "gcc" "src/CMakeFiles/dbs_amr.dir/amr/cases.cpp.o.d"
  "/root/repo/src/amr/quadtree.cpp" "src/CMakeFiles/dbs_amr.dir/amr/quadtree.cpp.o" "gcc" "src/CMakeFiles/dbs_amr.dir/amr/quadtree.cpp.o.d"
  "/root/repo/src/amr/refinement.cpp" "src/CMakeFiles/dbs_amr.dir/amr/refinement.cpp.o" "gcc" "src/CMakeFiles/dbs_amr.dir/amr/refinement.cpp.o.d"
  "/root/repo/src/amr/sensor.cpp" "src/CMakeFiles/dbs_amr.dir/amr/sensor.cpp.o" "gcc" "src/CMakeFiles/dbs_amr.dir/amr/sensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
