file(REMOVE_RECURSE
  "libdbs_amr.a"
)
