file(REMOVE_RECURSE
  "CMakeFiles/dbs_config.dir/config/maui_config.cpp.o"
  "CMakeFiles/dbs_config.dir/config/maui_config.cpp.o.d"
  "libdbs_config.a"
  "libdbs_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
