# Empty dependencies file for dbs_config.
# This may be replaced when dependencies are built.
