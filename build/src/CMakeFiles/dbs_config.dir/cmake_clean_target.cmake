file(REMOVE_RECURSE
  "libdbs_config.a"
)
