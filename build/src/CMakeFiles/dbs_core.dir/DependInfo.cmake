
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/availability_profile.cpp" "src/CMakeFiles/dbs_core.dir/core/availability_profile.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/availability_profile.cpp.o.d"
  "/root/repo/src/core/backfill.cpp" "src/CMakeFiles/dbs_core.dir/core/backfill.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/backfill.cpp.o.d"
  "/root/repo/src/core/delay_measurement.cpp" "src/CMakeFiles/dbs_core.dir/core/delay_measurement.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/delay_measurement.cpp.o.d"
  "/root/repo/src/core/dfs_engine.cpp" "src/CMakeFiles/dbs_core.dir/core/dfs_engine.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/dfs_engine.cpp.o.d"
  "/root/repo/src/core/dfs_policy.cpp" "src/CMakeFiles/dbs_core.dir/core/dfs_policy.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/dfs_policy.cpp.o.d"
  "/root/repo/src/core/fairshare.cpp" "src/CMakeFiles/dbs_core.dir/core/fairshare.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/fairshare.cpp.o.d"
  "/root/repo/src/core/malleable.cpp" "src/CMakeFiles/dbs_core.dir/core/malleable.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/malleable.cpp.o.d"
  "/root/repo/src/core/maui_scheduler.cpp" "src/CMakeFiles/dbs_core.dir/core/maui_scheduler.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/maui_scheduler.cpp.o.d"
  "/root/repo/src/core/negotiation.cpp" "src/CMakeFiles/dbs_core.dir/core/negotiation.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/negotiation.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/dbs_core.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/preemption.cpp" "src/CMakeFiles/dbs_core.dir/core/preemption.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/preemption.cpp.o.d"
  "/root/repo/src/core/priority.cpp" "src/CMakeFiles/dbs_core.dir/core/priority.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/priority.cpp.o.d"
  "/root/repo/src/core/reservation_table.cpp" "src/CMakeFiles/dbs_core.dir/core/reservation_table.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/reservation_table.cpp.o.d"
  "/root/repo/src/core/scheduler_config.cpp" "src/CMakeFiles/dbs_core.dir/core/scheduler_config.cpp.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/scheduler_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
