file(REMOVE_RECURSE
  "CMakeFiles/dbs_core.dir/core/availability_profile.cpp.o"
  "CMakeFiles/dbs_core.dir/core/availability_profile.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/backfill.cpp.o"
  "CMakeFiles/dbs_core.dir/core/backfill.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/delay_measurement.cpp.o"
  "CMakeFiles/dbs_core.dir/core/delay_measurement.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/dfs_engine.cpp.o"
  "CMakeFiles/dbs_core.dir/core/dfs_engine.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/dfs_policy.cpp.o"
  "CMakeFiles/dbs_core.dir/core/dfs_policy.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/fairshare.cpp.o"
  "CMakeFiles/dbs_core.dir/core/fairshare.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/malleable.cpp.o"
  "CMakeFiles/dbs_core.dir/core/malleable.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/maui_scheduler.cpp.o"
  "CMakeFiles/dbs_core.dir/core/maui_scheduler.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/negotiation.cpp.o"
  "CMakeFiles/dbs_core.dir/core/negotiation.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/partition.cpp.o"
  "CMakeFiles/dbs_core.dir/core/partition.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/preemption.cpp.o"
  "CMakeFiles/dbs_core.dir/core/preemption.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/priority.cpp.o"
  "CMakeFiles/dbs_core.dir/core/priority.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/reservation_table.cpp.o"
  "CMakeFiles/dbs_core.dir/core/reservation_table.cpp.o.d"
  "CMakeFiles/dbs_core.dir/core/scheduler_config.cpp.o"
  "CMakeFiles/dbs_core.dir/core/scheduler_config.cpp.o.d"
  "libdbs_core.a"
  "libdbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
