file(REMOVE_RECURSE
  "libdbs_core.a"
)
