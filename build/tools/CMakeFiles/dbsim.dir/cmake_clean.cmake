file(REMOVE_RECURSE
  "CMakeFiles/dbsim.dir/dbsim.cpp.o"
  "CMakeFiles/dbsim.dir/dbsim.cpp.o.d"
  "dbsim"
  "dbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
