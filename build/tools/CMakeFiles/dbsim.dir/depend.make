# Empty dependencies file for dbsim.
# This may be replaced when dependencies are built.
